//! Per-executor log writers.
//!
//! Each transaction executor owns one [`LogWriter`] appending to its own
//! segment file, mirroring Silo's per-worker logs: the commit fast path only
//! touches the writer's in-memory buffer under a short mutex, never the
//! disk. A distributed (2PC) commit passes through the committing executor's
//! writer with the records of *every* participating container in one
//! checksummed frame, so recovery sees distributed transactions atomically.
//!
//! Writers can be *rotated* onto a fresh segment file
//! ([`LogWriter::swap_file`]): the checkpointer rotates every writer right
//! after a group commit so retired segments end at a durable boundary and
//! become eligible for truncation once a later checkpoint covers them.
//!
//! # Delta logging and re-basing
//!
//! With delta logging active, repeat updates arrive from the coordinator as
//! [`RedoPayload::Delta`] records and are encoded as field-level delta
//! frames. The writer enforces the chain-root invariant: a delta is only
//! emitted for a key this writer has logged a full image for *in its
//! current segment file* (tracked in `WriterInner::rooted`); otherwise the
//! record is **re-based** — downgraded to the full after-image the
//! coordinator shipped alongside the delta. Rotation clears the tracker
//! under the same mutex that swaps the file, so the first post-rotation
//! touch of every key is full-image again. Together with the checkpointer's
//! cover-epoch truncation (only whole segments at or below the checkpoint
//! epoch are deleted, and the checkpoint row then supplies the base), every
//! delta chain recovery can encounter is rooted in a full image. Keeping
//! the tracker per-writer (not WAL-global) makes the decision atomic with
//! the append and the swap; routing a key's commits across executors only
//! costs extra full images, never an unrooted chain.

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use reactdb_common::{DurabilityConfig, DurabilityMode, Key, ReactorId};
use reactdb_storage::TidWord;
use reactdb_txn::{LogSink, RedoPayload, RedoRecord};

use crate::codec;
use crate::stats::WalStats;

/// Flush threshold for [`DurabilityMode::Buffered`] writers. EpochSync
/// writers never flush outside a group commit: buffered bytes must not reach
/// the OS before their epoch is declared durable, or a crash could surface
/// transactions from an unsynced epoch.
const BUFFERED_FLUSH_BYTES: usize = 1 << 20;

struct WriterInner {
    buf: Vec<u8>,
    file: File,
    path: PathBuf,
    /// Keys with a full-image root in the *current* segment file, keyed
    /// reactor → relation → primary keys. Cleared by [`LogWriter::swap_file`]
    /// under this same mutex (the re-basing rule).
    rooted: HashMap<ReactorId, HashMap<String, HashSet<Key>>>,
    /// Keys this writer has logged since the last completed checkpoint,
    /// with the highest commit epoch seen per key — the delta-checkpoint
    /// dirty set. Unlike `rooted` this survives [`LogWriter::swap_file`]:
    /// rotation changes which file holds a chain, not whether a row is
    /// dirty relative to the last checkpoint. Cleared (through an epoch)
    /// only by the checkpointer after a successful capture.
    dirty: HashMap<(ReactorId, String), HashMap<Key, u64>>,
}

impl WriterInner {
    fn is_rooted(&self, record: &RedoRecord) -> bool {
        self.rooted
            .get(&record.reactor)
            .and_then(|relations| relations.get(record.relation.as_str()))
            .is_some_and(|keys| keys.contains(&record.key))
    }

    fn root(&mut self, record: &RedoRecord) {
        // Steady state is "already rooted": check with borrowed lookups
        // first so the hot path never clones the relation name or key.
        if self.is_rooted(record) {
            return;
        }
        self.rooted
            .entry(record.reactor)
            .or_default()
            .entry(record.relation.clone())
            .or_default()
            .insert(record.key.clone());
    }

    fn unroot(&mut self, record: &RedoRecord) {
        if let Some(keys) = self
            .rooted
            .get_mut(&record.reactor)
            .and_then(|relations| relations.get_mut(record.relation.as_str()))
        {
            keys.remove(&record.key);
        }
    }

    /// Marks `record`'s key dirty at `epoch`. Deletes are tracked too: a
    /// delta checkpoint must capture the tombstone, or a recovery from
    /// full + delta layers would resurrect the row.
    fn mark_dirty(&mut self, record: &RedoRecord, epoch: u64) {
        let last = self
            .dirty
            .entry((record.reactor, record.relation.clone()))
            .or_default()
            .entry(record.key.clone())
            .or_insert(0);
        *last = (*last).max(epoch);
    }
}

/// The log writer of one executor; implements [`LogSink`] for the commit
/// path.
pub struct LogWriter {
    executor: usize,
    mode: DurabilityMode,
    /// Delta logging is active: EpochSync mode with the config knob on.
    /// (Buffered-mode flushes are per-writer and could persist a delta
    /// whose cross-writer base never reached the OS, so deltas are
    /// restricted to the epoch-fenced mode whose recovery filter makes the
    /// base's durability imply the delta's.)
    delta: bool,
    /// Record-level RLE compression of frame bodies.
    compress: bool,
    /// Dirty-key tracking for delta checkpoints. Off by default; the
    /// checkpointer switches it on when the config enables delta
    /// checkpoints, so non-delta deployments pay nothing on the commit
    /// path beyond this one relaxed load.
    track_dirty: AtomicBool,
    inner: Mutex<WriterInner>,
    stats: Arc<WalStats>,
}

impl LogWriter {
    /// Creates the writer and its segment file, writing the header
    /// immediately so even an empty segment is recognisable.
    pub(crate) fn create(
        path: &Path,
        executor: usize,
        generation: u32,
        config: &DurabilityConfig,
        stats: Arc<WalStats>,
    ) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut header = Vec::with_capacity(16);
        codec::encode_header(&mut header, executor as u32, generation);
        let mut inner = WriterInner {
            buf: header,
            file,
            path: path.to_path_buf(),
            rooted: HashMap::new(),
            dirty: HashMap::new(),
        };
        // The header is metadata, not redo payload: push it to the OS right
        // away (without fsync) so scans never mistake the file for garbage.
        Self::write_out(&mut inner)?;
        Ok(Self {
            executor,
            mode: config.mode,
            delta: config.delta_logging && config.mode == DurabilityMode::EpochSync,
            compress: config.compress_records,
            track_dirty: AtomicBool::new(false),
            inner: Mutex::new(inner),
            stats,
        })
    }

    /// Executor this writer belongs to.
    pub fn executor(&self) -> usize {
        self.executor
    }

    /// The segment file the writer currently appends to.
    pub fn path(&self) -> PathBuf {
        self.inner.lock().path.clone()
    }

    /// True when this writer emits field-level delta frames.
    pub fn delta_logging(&self) -> bool {
        self.delta
    }

    fn write_out(inner: &mut WriterInner) -> std::io::Result<()> {
        if !inner.buf.is_empty() {
            inner.file.write_all(&inner.buf)?;
            inner.buf.clear();
        }
        Ok(())
    }

    /// Writes buffered bytes to the OS and optionally fsyncs. Called by the
    /// group-commit daemon (with `fsync`) and by buffered-mode flushes
    /// (without).
    pub(crate) fn flush(&self, fsync: bool) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        Self::write_out(&mut inner)?;
        if fsync {
            inner.file.sync_data()?;
        }
        Ok(())
    }

    /// Rotates the writer onto a fresh segment file, returning the retired
    /// file's path. Must be called *directly after a group commit* (the
    /// caller holds the WAL's sync lock): everything flushed so far sits
    /// fsynced in the old file, and whatever has accumulated in the buffer
    /// since the flush belongs to epochs the durable marker does not cover
    /// yet — it stays in the buffer and lands in the *new* file on the next
    /// flush, so the retired file never grows a tail that misses its fsync.
    ///
    /// The rooted-key tracker is cleared in the same mutex acquisition:
    /// any append ordered before the swap made its delta-or-full decision
    /// against the old file, any append ordered after starts the new file's
    /// chains with a full image.
    pub(crate) fn swap_file(&self, path: &Path, generation: u32) -> std::io::Result<PathBuf> {
        let mut inner = self.inner.lock();
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(16);
        codec::encode_header(&mut header, self.executor as u32, generation);
        // Header straight to the OS (not via the shared buffer, which may
        // hold frames): scans must never mistake the file for garbage.
        file.write_all(&header)?;
        let old_path = std::mem::replace(&mut inner.path, path.to_path_buf());
        inner.file = file; // old handle drops (everything durable is synced)
        inner.rooted.clear(); // re-base: first touch per key logs full again
        Ok(old_path)
    }

    /// Bytes currently buffered in memory (not yet handed to the OS).
    pub fn buffered_bytes(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Switches dirty-key tracking on or off. Turning it on only covers
    /// commits logged *from now on* — the checkpointer compensates by
    /// forcing its first checkpoint of an instance lifetime to be full.
    pub(crate) fn set_track_dirty(&self, on: bool) {
        self.track_dirty.store(on, Ordering::Relaxed);
    }

    /// Snapshot of the dirty set: every (reactor, relation, key) this
    /// writer has logged since the last `clear_dirty_through`, with the
    /// highest commit epoch per key.
    pub(crate) fn dirty_snapshot(&self) -> HashMap<(ReactorId, String), HashMap<Key, u64>> {
        self.inner.lock().dirty.clone()
    }

    /// Drops dirty entries whose last commit epoch is ≤ `epoch`. Called
    /// after a checkpoint whose stable snapshot epoch is `epoch` commits:
    /// those keys' latest images were captured (the epoch gate drained
    /// every commit at or below `epoch` before the walk), while keys
    /// re-dirtied during the capture carry a higher epoch and survive for
    /// the next delta.
    pub(crate) fn clear_dirty_through(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.dirty.retain(|_, keys| {
            keys.retain(|_, last| *last > epoch);
            !keys.is_empty()
        });
    }
}

impl LogSink for LogWriter {
    fn wants_deltas(&self) -> bool {
        self.delta
    }

    fn log_commit(&self, tid: TidWord, records: &[RedoRecord]) {
        let track_dirty = self.track_dirty.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if track_dirty {
            for record in records {
                inner.mark_dirty(record, tid.epoch());
            }
        }
        // Render plan: decide delta-vs-full per record under the writer
        // mutex (atomic with the append and with rotation). Downgrades are
        // rare after warm-up, so the batch is only cloned when one occurs.
        let mut rebased: Option<Vec<RedoRecord>> = None;
        if self.delta {
            for (i, record) in records.iter().enumerate() {
                match &record.payload {
                    RedoPayload::Delta(row_delta) => {
                        let full_len = row_delta.image.as_ref().map(codec::encoded_tuple_len);
                        let delta_len = codec::encoded_delta_len(&row_delta.delta);
                        // Keep the delta only when the key has a full-image
                        // root in this segment AND the delta actually saves
                        // bytes; otherwise re-base to the full image.
                        let keep =
                            inner.is_rooted(record) && full_len.is_none_or(|full| delta_len < full);
                        if keep {
                            self.stats
                                .record_delta(full_len.map_or(0, |full| (full - delta_len) as u64));
                        } else {
                            let image = row_delta
                                .image
                                .clone()
                                .expect("commit-path delta records carry their after-image");
                            rebased.get_or_insert_with(|| records.to_vec())[i].payload =
                                RedoPayload::Full(image);
                            inner.root(record);
                        }
                    }
                    RedoPayload::Full(_) => inner.root(record),
                    // A tombstone ends the chain; the slot only comes back
                    // through an insert, which is always full-image.
                    RedoPayload::Delete => inner.unroot(record),
                }
            }
        }
        let render = rebased.as_deref().unwrap_or(records);
        let written = codec::encode_batch_opts(
            &mut inner.buf,
            tid,
            render,
            self.compress,
            |record, bytes| {
                self.stats
                    .record_table_bytes(record.reactor, &record.relation, bytes);
            },
        );
        self.stats
            .record_batch(written as u64, records.len() as u64);
        if self.mode == DurabilityMode::Buffered && inner.buf.len() >= BUFFERED_FLUSH_BYTES {
            // Opportunistic flush; an I/O error here surfaces on the next
            // explicit flush, buffered mode offers no durability guarantee.
            let _ = Self::write_out(&mut inner);
        }
    }
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("executor", &self.executor)
            .field("mode", &self.mode)
            .field("delta", &self.delta)
            .field("compress", &self.compress)
            .finish()
    }
}
