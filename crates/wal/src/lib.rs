//! Epoch-based group-commit write-ahead logging and crash recovery for
//! ReactDB-rs.
//!
//! The seed engine committed every transaction in volatile memory. This
//! crate adds the durability design that Silo (whose OCC protocol ReactDB
//! reuses, §3.2.1) pairs with its epoch machinery:
//!
//! * **Per-executor log writers** ([`LogWriter`]) implement the
//!   [`reactdb_txn::LogSink`] hook: at commit time the coordinator renders
//!   the validated write set as [`reactdb_txn::RedoRecord`]s and the writer
//!   appends one checksummed frame to an in-memory buffer — no disk I/O on
//!   the commit path. 2PC commits log the records of every participating
//!   container in the same frame.
//! * **Group commit** ([`Wal::sync`]): driven by the
//!   [`reactdb_txn::EpochManager`], a daemon periodically fences the current
//!   epoch, drains in-flight commits through a reader-writer gate, flushes
//!   and fsyncs every writer, and advances the on-disk durable-epoch marker
//!   to `fence - 1`. The fence/drain order guarantees that every record of
//!   an epoch `<=` the marker is on disk (see `Wal::sync` for the argument).
//! * **Recovery** ([`recover_and_compact`]): scans every segment in the log
//!   directory, discards torn tails and (under
//!   [`DurabilityMode::EpochSync`]) frames beyond the durable epoch, sorts
//!   the surviving batches by commit TID and hands them to the engine for
//!   replay into `reactdb_storage::Partition`s; the kept prefix is rewritten
//!   into a fresh checkpoint segment and stale segments are deleted, so
//!   discarded (never-durable) frames cannot resurrect on a later recovery.
//!
//! Unlike Silo proper, the engine releases a transaction's result to the
//! client as soon as its writes are installed, before its epoch is synced —
//! group commit bounds the window of acknowledged-but-lost work to one epoch
//! rather than eliminating it. This matches the repository's goal of
//! reproducing the performance architecture; early result release is
//! documented here so nobody mistakes `Buffered`/`EpochSync` for synchronous
//! commit.

pub mod checkpoint;
pub mod codec;
pub mod failpoint;
pub mod ship;
pub mod stats;
pub mod writer;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard};
use reactdb_common::{DurabilityConfig, DurabilityMode};
use reactdb_obs::{Metrics, Phase, TraceKind};
use reactdb_storage::TidWord;
use reactdb_txn::{Coordinator, EpochManager, RedoRecord};

pub use checkpoint::{
    load_checkpoint, CheckpointReport, CheckpointTable, Checkpointer, RecoveredCheckpoint,
};
pub use ship::{ShipCursor, ShipEvent};
pub use stats::{TableLogUsage, WalStats};
pub use writer::LogWriter;

/// File name of the durable-epoch marker.
const MARKER_FILE: &str = "durable_epoch";
/// Magic bytes opening the marker file.
const MARKER_MAGIC: [u8; 8] = *b"RDBEPOCH";
/// File name of the advisory single-instance lock.
const LOCK_FILE: &str = "LOCK";

/// Advisory single-instance lock on a log directory.
///
/// A log directory belongs to exactly one live WAL at a time: a second
/// instance appending its own segments would interleave (epoch, sequence)
/// pairs, and a recovery compacting the directory under a live writer would
/// unlink the inode the writer keeps "syncing" into. That rule used to hold
/// by convention only (ROADMAP open item); this lock enforces it across
/// processes with [`std::fs::File::try_lock`] on a `LOCK` file. The OS
/// releases the lock when the holding process exits — even by crash — so a
/// stale `LOCK` file never blocks recovery.
///
/// The lock is held for the lifetime of the value. [`Wal::open`] acquires
/// one automatically; `reactdb-engine` acquires it *before* crash recovery
/// scans the directory and hands it to [`Wal::open_locked`], so the
/// recovery-compact-reopen sequence is covered end to end.
#[derive(Debug)]
pub struct LogDirLock {
    /// Held open for the lock's lifetime; the advisory lock is attached to
    /// this file description and released when it closes.
    _file: fs::File,
    dir: PathBuf,
}

impl LogDirLock {
    /// Acquires the advisory lock for `dir`, creating the directory and the
    /// `LOCK` file as needed. Fails with [`io::ErrorKind::WouldBlock`]-style
    /// contention mapped to a descriptive error when another live WAL
    /// instance (in this or any other process) holds the directory.
    pub fn acquire(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(dir.join(LOCK_FILE))?;
        match file.try_lock() {
            Ok(()) => Ok(Self {
                _file: file,
                dir: dir.to_path_buf(),
            }),
            Err(fs::TryLockError::WouldBlock) => Err(io::Error::other(format!(
                "log directory {} is locked by another live WAL instance",
                dir.display()
            ))),
            Err(fs::TryLockError::Error(e)) => Err(e),
        }
    }

    /// The locked directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Parks threads waiting for the durable epoch to reach a target; the
/// group-commit path notifies after every successful sync.
#[derive(Default)]
struct EpochWatch {
    lock: Mutex<()>,
    cond: Condvar,
}

impl EpochWatch {
    fn notify(&self) {
        let _guard = self.lock.lock();
        self.cond.notify_all();
    }
}

/// The write-ahead log of one database instance: one writer per executor, a
/// commit gate, and the group-commit state.
pub struct Wal {
    dir: PathBuf,
    mode: DurabilityMode,
    writers: Vec<Arc<LogWriter>>,
    /// Commit gate: committers hold the read side across epoch read, write
    /// installation and log append; [`Wal::sync`] acquires the write side to
    /// drain them before flushing.
    gate: RwLock<()>,
    /// Serializes [`Wal::sync`] calls: the daemon and explicit syncs would
    /// otherwise race on the shared marker temp file and could move the
    /// on-disk marker backwards relative to what a caller was told.
    sync_lock: Mutex<()>,
    epoch: Arc<EpochManager>,
    stats: Arc<WalStats>,
    stop: AtomicBool,
    daemon: Mutex<Option<JoinHandle<()>>>,
    /// Group-commit interval the daemon runs at; zero when no daemon was
    /// started (explicit syncs only). Used to bound how long durable-epoch
    /// waiters park before kicking a sync themselves.
    daemon_interval_ms: std::sync::atomic::AtomicU64,
    /// Wakes [`Wal::wait_durable`] waiters after every group commit.
    watch: EpochWatch,
    /// Set once [`Wal::shutdown`] completed: later syncs are refused so a
    /// lingering client handle cannot write into a directory another
    /// instance may have taken over.
    closed: AtomicBool,
    /// Advisory single-instance lock on the log directory, held until
    /// shutdown (released there, not at drop, so a lingering `Arc<Wal>` in
    /// a client handle cannot hold the directory hostage).
    dir_lock: Mutex<Option<LogDirLock>>,
    /// Observability registry, attached by the engine after boot (the WAL
    /// opens before the registry exists). Unset or disabled, the group
    /// commit takes no timestamps.
    metrics: OnceLock<Arc<Metrics>>,
}

/// True when `dir` already holds WAL state (segments or a durable-epoch
/// marker). [`reactdb_engine`]-level boots that are *not* recoveries must
/// refuse such a directory: a fresh instance restarts at epoch 1 and would
/// reissue (epoch, sequence) pairs already present in the old segments,
/// which a later recovery would replay in the wrong order.
pub fn log_dir_has_state(dir: &Path) -> io::Result<bool> {
    if !dir.exists() {
        return Ok(false);
    }
    if dir.join(MARKER_FILE).exists() {
        return Ok(true);
    }
    // A checkpoint manifest alone is state too: after full truncation a
    // directory may hold nothing but the checkpoint, and a fresh boot over
    // it would reissue (epoch, sequence) pairs the checkpoint rows carry.
    if dir.join(checkpoint::MANIFEST_FILE).exists() {
        return Ok(true);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("wal-") && name.ends_with(".log") {
            return Ok(true);
        }
    }
    Ok(false)
}

impl Wal {
    /// Opens the log for a new database instance: creates the log directory
    /// if needed, acquires the single-instance [`LogDirLock`], and creates a
    /// fresh segment generation with one writer per executor. Returns `None`
    /// when durability is off. Callers that must hold the lock *before*
    /// opening (e.g. across crash recovery) acquire it themselves and use
    /// [`Wal::open_locked`].
    pub fn open(
        config: &DurabilityConfig,
        executors: usize,
        epoch: Arc<EpochManager>,
    ) -> io::Result<Option<Arc<Self>>> {
        if !config.is_enabled() {
            return Ok(None);
        }
        let lock = LogDirLock::acquire(&config.log_dir_path()?)?;
        Self::open_locked(config, executors, epoch, lock).map(Some)
    }

    /// Like [`Wal::open`], but takes over a [`LogDirLock`] the caller
    /// already holds (the engine acquires it before recovery scans the
    /// directory, closing the window in which another instance could sneak
    /// in between compaction and reopen).
    pub fn open_locked(
        config: &DurabilityConfig,
        executors: usize,
        epoch: Arc<EpochManager>,
        lock: LogDirLock,
    ) -> io::Result<Arc<Self>> {
        assert!(
            config.is_enabled(),
            "open_locked requires an enabled durability mode"
        );
        let dir = config.log_dir_path()?;
        assert_eq!(lock.dir(), dir, "lock must cover the configured log dir");
        let generation = next_generation(&dir)?;
        let stats = Arc::new(WalStats::new());
        let mut writers = Vec::with_capacity(executors);
        for executor in 0..executors {
            let path = dir.join(segment_name(executor, generation));
            writers.push(Arc::new(LogWriter::create(
                &path,
                executor,
                generation,
                config,
                Arc::clone(&stats),
            )?));
        }
        // Resuming instances inherit the previous durable epoch so the
        // marker (and the stats) never move backwards; this seeds the epoch
        // only and does not count as a performed group commit.
        if config.mode == DurabilityMode::EpochSync {
            if let Some(durable) = read_marker(&dir)? {
                stats.seed_durable_epoch(durable);
            }
        }
        Ok(Arc::new(Self {
            dir,
            mode: config.mode,
            writers,
            gate: RwLock::new(()),
            sync_lock: Mutex::new(()),
            epoch,
            stats,
            stop: AtomicBool::new(false),
            daemon: Mutex::new(None),
            daemon_interval_ms: std::sync::atomic::AtomicU64::new(0),
            watch: EpochWatch::default(),
            closed: AtomicBool::new(false),
            dir_lock: Mutex::new(Some(lock)),
            metrics: OnceLock::new(),
        }))
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured durability mode (never `Off`).
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// The writer (commit-path [`reactdb_txn::LogSink`]) of one executor.
    pub fn writer(&self, executor: usize) -> &Arc<LogWriter> {
        &self.writers[executor]
    }

    /// Every per-executor writer — the checkpointer iterates them to
    /// enable dirty tracking and to snapshot/clear dirty sets.
    pub(crate) fn writers(&self) -> &[Arc<LogWriter>] {
        &self.writers
    }

    /// Durability counters.
    pub fn stats(&self) -> &Arc<WalStats> {
        &self.stats
    }

    /// Attaches the engine's observability registry; later calls are
    /// ignored (first writer wins). The group commit and the checkpointer
    /// record sync-wait/fsync/chunk timings into it.
    pub fn attach_metrics(&self, metrics: Arc<Metrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// The attached registry, when present and enabled.
    fn obs(&self) -> Option<&Metrics> {
        self.metrics.get().map(Arc::as_ref).filter(|m| m.enabled())
    }

    /// The attached registry for sibling daemons (the checkpointer).
    pub(crate) fn observability(&self) -> Option<&Metrics> {
        self.obs()
    }

    /// Highest epoch currently guaranteed durable.
    pub fn durable_epoch(&self) -> u64 {
        self.stats.durable_epoch()
    }

    /// Enters the commit critical section. The engine holds the returned
    /// guard across `Coordinator::commit_logged` so that [`Wal::sync`]'s
    /// drain step can wait for every in-flight commit.
    pub fn commit_guard(&self) -> RwLockReadGuard<'_, ()> {
        self.gate.read()
    }

    /// Performs one group commit and returns the durable epoch.
    ///
    /// Correctness of the fence/drain order: let `f` be the epoch read at
    /// step 1. Any commit that started before the drain (step 2) completed
    /// its log append before the flush (step 3) because it held the gate's
    /// read side throughout. Any commit starting after the drain reads an
    /// epoch `>= f` (epochs are monotone and `f` was already current), so no
    /// record with epoch `<= f - 1` can be appended after the flush. Every
    /// record of epochs `<= f - 1` is therefore on disk when the marker
    /// advances to `f - 1`.
    pub fn sync(&self) -> io::Result<u64> {
        if self.closed.load(Ordering::Acquire) {
            // Not counted as a sync failure: the log device is fine, the
            // instance is simply retired (and may no longer own the
            // directory).
            return Err(io::Error::other("WAL is shut down"));
        }
        let result = self.sync_inner();
        if result.is_err() && !self.closed.load(Ordering::Acquire) {
            // Make persistent I/O failures observable: the daemon (and the
            // engine's `wal_sync`) drop the error itself, but the counter
            // keeps climbing and `durable_epoch` visibly stalls. A sync
            // refused because the instance is retired is not a failure of
            // the log device and is not counted.
            self.stats.record_sync_failure();
        }
        result
    }

    fn sync_inner(&self) -> io::Result<u64> {
        let _serial = self.sync_lock.lock();
        // Re-check under the sync lock: a syncer that passed the fast-path
        // check in `sync()` and then blocked here while `shutdown` retired
        // the instance must not touch a directory the lock release may
        // have handed to a successor.
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::other("WAL is shut down"));
        }
        self.group_commit_locked()
    }

    /// One group commit; the caller holds the sync lock and has verified the
    /// instance is not retired.
    fn group_commit_locked(&self) -> io::Result<u64> {
        match self.mode {
            DurabilityMode::EpochSync => {
                let obs = self.obs();
                let wait_started = obs.map(|_| Instant::now());
                let fence = self.epoch.current(); // 1. fence
                drop(self.gate.write()); // 2. drain in-flight commits
                if let (Some(m), Some(started)) = (obs, wait_started) {
                    let ns = m.record_elapsed(Phase::WalSyncWait, usize::MAX, started);
                    m.trace(usize::MAX, 0, TraceKind::GroupCommitWait, ns);
                }
                let fsync_started = obs.map(|_| Instant::now());
                for writer in &self.writers {
                    writer.flush(true)?; // 3. flush + fsync
                }
                if let (Some(m), Some(started)) = (obs, fsync_started) {
                    let ns = m.record_elapsed(Phase::WalFsync, usize::MAX, started);
                    m.trace(usize::MAX, 0, TraceKind::GroupCommitFsync, ns);
                }
                let durable = fence.saturating_sub(1);
                if durable > self.stats.durable_epoch() {
                    write_marker(&self.dir, durable)?; // 4. advance marker
                }
                self.stats.record_sync(durable);
                self.watch.notify(); // 5. wake durable-epoch waiters
                Ok(durable)
            }
            DurabilityMode::Buffered => {
                for writer in &self.writers {
                    writer.flush(false)?;
                }
                self.stats.record_sync(self.stats.durable_epoch());
                self.watch.notify();
                Ok(self.stats.durable_epoch())
            }
            DurabilityMode::Off => unreachable!("Wal::open returns None for Off"),
        }
    }

    /// The stable epoch a checkpoint may snapshot against: reads the epoch
    /// through the commit protocol's [`Coordinator::stable_epoch`] hook,
    /// then drains every in-flight commit through the gate's write side.
    /// After the drain, every transaction with a TID epoch `<=` the
    /// returned value has fully installed its writes, and no future commit
    /// can carry such an epoch — so a table walk started now captures the
    /// complete effects of that epoch prefix.
    pub fn stable_snapshot_epoch(&self) -> io::Result<u64> {
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::other("WAL is shut down"));
        }
        let stable = Coordinator::stable_epoch(&self.epoch);
        drop(self.gate.write()); // drain in-flight commits
        Ok(stable)
    }

    /// Rotates every writer onto a fresh segment generation, preceded by one
    /// group commit so the retired files end exactly at a durable boundary
    /// (frames appended after the commit's flush stay in the writer buffers
    /// and land in the new files). The checkpointer rotates after each
    /// completed checkpoint; the retired segments become eligible for
    /// [`Wal::truncate_stale_segments`] once a later checkpoint covers their
    /// epochs. Returns the retired segment paths.
    pub fn rotate_segments(&self) -> io::Result<Vec<PathBuf>> {
        let _serial = self.sync_lock.lock();
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::other("WAL is shut down"));
        }
        self.group_commit_locked()?;
        let generation = next_generation(&self.dir)?;
        let mut retired = Vec::with_capacity(self.writers.len());
        for writer in &self.writers {
            let path = self.dir.join(segment_name(writer.executor(), generation));
            retired.push(writer.swap_file(&path, generation)?);
        }
        sync_dir(&self.dir)?;
        Ok(retired)
    }

    /// Deletes every non-live log segment whose records are *entirely*
    /// covered by the checkpoint at `covered_epoch` (all frame epochs `<=
    /// covered_epoch`), applying the same retention policy as offline
    /// compaction: foreign files and segments with torn tails are left
    /// alone. Returns `(bytes, segments)` reclaimed and records them in the
    /// stats.
    pub fn truncate_stale_segments(&self, covered_epoch: u64) -> io::Result<(u64, u64)> {
        let _serial = self.sync_lock.lock();
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::other("WAL is shut down"));
        }
        let live: Vec<PathBuf> = self.writers.iter().map(|w| w.path()).collect();
        let mut delete: Vec<PathBuf> = Vec::new();
        for path in list_segments(&self.dir)? {
            if live.contains(&path) {
                continue;
            }
            let bytes = fs::read(&path)?;
            let Some(scan) = codec::decode_segment(&bytes) else {
                continue; // foreign or headerless file: leave it alone
            };
            if scan.truncated_tail {
                continue; // suspicious: leave the evidence for recovery
            }
            if scan
                .batches
                .iter()
                .all(|(tid, _)| tid.epoch() <= covered_epoch)
            {
                delete.push(path);
            }
        }
        let segments = delete.len() as u64;
        let bytes = retire_segments(&self.dir, &delete, &[])?;
        if segments > 0 {
            self.stats.record_truncation(bytes, segments);
        }
        Ok((bytes, segments))
    }

    /// Blocks until the durable epoch reaches `target`, i.e. until the group
    /// commit covering epoch `target` completed. Returns the durable epoch
    /// at that point (`>= target`).
    ///
    /// This is the durability gate behind the client API's
    /// `TxnHandle::wait_durable`: a transaction whose commit TID carries
    /// epoch `e` is guaranteed on disk exactly when `durable_epoch() >= e`
    /// (Silo's group-commit acknowledgement rule).
    ///
    /// Waiters normally park on the epoch watch and are woken by the
    /// group-commit daemon after each sync. Two situations make a waiter
    /// *kick* a group commit itself instead of parking forever:
    ///
    /// * no daemon is running (interval 0, the explicit-sync mode tests and
    ///   latency-sensitive clients use), or
    /// * the daemon missed its deadline by more than two intervals (daemon
    ///   death must not strand acknowledgements).
    ///
    /// The kick first raises the global epoch beyond `target` — the fence
    /// read by the sync must exceed the target for `fence - 1 >= target` —
    /// then performs one group commit. Concurrent kickers serialize on the
    /// sync lock and re-check the durable epoch, so a burst of waiters
    /// costs one fsync, not one each.
    pub fn wait_durable(&self, target: u64) -> io::Result<u64> {
        if self.mode != DurabilityMode::EpochSync {
            // Buffered mode has no durable-epoch notion; one flush pushes
            // every appended frame to the OS, which is the strongest
            // guarantee the mode offers. Callers get back immediately.
            self.sync()?;
            return Ok(self.stats.durable_epoch());
        }
        if self.stats.durable_epoch() >= target {
            return Ok(self.stats.durable_epoch());
        }
        self.stats.record_durable_wait();
        loop {
            let durable = self.stats.durable_epoch();
            if durable >= target {
                return Ok(durable);
            }
            let interval = self.daemon_interval_ms.load(Ordering::Acquire);
            let daemon_alive = interval > 0 && !self.stop.load(Ordering::Acquire);
            if daemon_alive {
                // Check-park under the watch lock: a sync completing between
                // the check above and the park below notifies under the same
                // lock, so the wakeup cannot be lost. The bounded wait is
                // the fallback for a stalled daemon.
                let mut guard = self.watch.lock.lock();
                if self.stats.durable_epoch() >= target {
                    continue; // re-read and return at the top of the loop
                }
                let timed_out = self
                    .watch
                    .cond
                    .wait_for(&mut guard, Duration::from_millis(2 * interval))
                    .timed_out();
                drop(guard);
                if !timed_out {
                    continue;
                }
            }
            // Kick: advance the epoch past the target and group-commit.
            self.epoch.advance_to(target + 1);
            let durable = self.sync()?;
            if durable >= target {
                return Ok(durable);
            }
        }
    }

    /// Starts the group-commit daemon with the configured interval; a zero
    /// interval means syncs happen only on explicit [`Wal::sync`] calls and
    /// on clean shutdown.
    pub fn start_daemon(self: &Arc<Self>, interval_ms: u64) {
        if interval_ms == 0 {
            return;
        }
        self.daemon_interval_ms
            .store(interval_ms, Ordering::Release);
        let wal = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("reactdb-wal-sync".into())
            .spawn(move || {
                let period = Duration::from_millis(interval_ms);
                let mut last_fence = 0u64;
                while !wal.stop.load(Ordering::Acquire) {
                    std::thread::sleep(period);
                    // Skip the I/O when no new epoch can have completed.
                    let fence = wal.epoch.current();
                    if fence == last_fence {
                        continue;
                    }
                    last_fence = fence;
                    let _ = wal.sync();
                }
            })
            .expect("spawn wal daemon");
        *self.daemon.lock() = Some(handle);
    }

    /// Stops the daemon and, unless the caller simulates a crash, performs a
    /// final flush that makes every committed transaction durable (the
    /// epoch is advanced first so the marker can cover the last epoch).
    pub fn shutdown(&self, flush: bool) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.daemon.lock().take() {
            let _ = handle.join();
        }
        if flush && !self.closed.load(Ordering::Acquire) {
            if self.mode == DurabilityMode::EpochSync {
                self.epoch.advance();
            }
            let _ = self.sync();
        }
        // Retire the instance: refuse later syncs and release the log
        // directory, so a lingering `Arc<Wal>` held by a client handle can
        // neither block a successor instance nor write under it. Both
        // happen under the sync lock: a concurrent syncer either completed
        // before the release (directory still ours) or re-checks `closed`
        // under the lock and is refused — it can never write into a
        // directory a successor has taken over. Waiters parked in
        // `wait_durable` observe the stop flag, fall through to the kick
        // path and get the shutdown error.
        {
            let _serial = self.sync_lock.lock();
            self.closed.store(true, Ordering::Release);
            *self.dir_lock.lock() = None;
        }
        self.watch.notify();
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("writers", &self.writers.len())
            .field("durable_epoch", &self.durable_epoch())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Everything recovery extracted from a log directory.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The newest complete checkpoint, when one is installed: its rows are
    /// replayed *before* the log tail and fully cover every commit with a
    /// TID epoch `<= checkpoint.epoch`.
    pub checkpoint: Option<RecoveredCheckpoint>,
    /// Redo batches to replay, sorted by commit TID. With a checkpoint
    /// installed this is only the log *tail* — frames with epochs beyond the
    /// checkpoint — which is what bounds recovery cost by checkpoint size
    /// plus log-since-checkpoint instead of log history.
    pub batches: Vec<(TidWord, Vec<RedoRecord>)>,
    /// Largest commit TID among the kept batches and checkpoint rows (zero
    /// when none).
    pub max_tid: TidWord,
    /// Largest epoch observed in *any* frame (kept or discarded) or
    /// checkpoint stamp. The recovered instance resumes beyond it so
    /// pre-crash (epoch, sequence) pairs are never reissued.
    pub max_epoch_seen: u64,
    /// The durable epoch the scan honoured (`u64::MAX` in buffered mode).
    pub durable_epoch: u64,
    /// Segments whose frame stream ended early (torn tail or mid-file
    /// corruption). Expected to be non-zero after a genuine crash; a
    /// non-zero value on a cleanly shut down log indicates media
    /// corruption, and the offending bytes are preserved next to the log
    /// under a `.corrupt` name.
    pub truncated_segments: usize,
    /// Total log-segment bytes the scan had to read — together with the
    /// checkpoint's `bytes`, the I/O cost of this recovery. Bounded by
    /// truncation, not by log history.
    pub log_bytes_scanned: u64,
}

/// Every `wal-*.log` segment in `dir`, sorted by name.
fn list_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segments: Vec<PathBuf> = Vec::new();
    if dir.exists() {
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("wal-") && name.ends_with(".log") {
                segments.push(path);
            }
        }
    }
    segments.sort();
    Ok(segments)
}

/// The single segment-retention policy shared by offline compaction
/// ([`recover_and_compact`]) and online checkpoint truncation
/// ([`Wal::truncate_stale_segments`]): segments in `delete` are unlinked;
/// segments in `corrupt` are preserved next to the log under a `.corrupt`
/// name (ignored by future scans) instead of being destroyed — a torn tail
/// after a crash is expected, but mid-file corruption of a synced segment
/// would mean durable frames were dropped, and either way the bytes are
/// evidence. The directory is fsynced once at the end so the unlinks are
/// durable. Returns the bytes reclaimed by deletion.
fn retire_segments(dir: &Path, delete: &[PathBuf], corrupt: &[PathBuf]) -> io::Result<u64> {
    let mut reclaimed = 0u64;
    for path in corrupt {
        let _ = fs::rename(path, path.with_extension("log.corrupt"));
    }
    for path in delete {
        if let Ok(meta) = fs::metadata(path) {
            reclaimed += meta.len();
        }
        let _ = fs::remove_file(path);
    }
    if !delete.is_empty() || !corrupt.is_empty() {
        sync_dir(dir)?;
    }
    Ok(reclaimed)
}

/// Scans `dir`, loads the newest complete checkpoint (if any), keeps the
/// replayable log tail, rewrites the tail as a compacted segment and removes
/// stale segments.
///
/// Under [`DurabilityMode::EpochSync`] only frames with `tid.epoch() <=`
/// the on-disk durable-epoch marker survive; later frames belong to epochs
/// whose group commit never completed and are discarded together with their
/// segments (that deletion is what prevents a discarded transaction from
/// resurfacing once the marker later passes its epoch). Under
/// [`DurabilityMode::Buffered`] every intact frame survives.
///
/// With a checkpoint installed, frames with `tid.epoch() <=` the checkpoint
/// stamp are additionally skipped: the checkpoint already contains the full
/// effects of those epochs, so recovery replays checkpoint rows plus the
/// tail only. An incomplete checkpoint (missing or corrupt manifest, torn
/// data file, or a durable marker that does not cover the fuzzy capture) is
/// ignored entirely — the scan then falls back to the previous checkpoint
/// or, absent one, the full log, which a crash at any point of the
/// checkpoint protocol leaves intact.
///
/// # Concurrency
/// The caller must guarantee no live [`Wal`] instance is writing to `dir`:
/// compaction unlinks segment files, and a live writer would keep appending
/// to the unlinked inode, silently losing everything it "syncs" afterwards.
/// `ReactDB::recover` upholds this by only scanning before its own WAL
/// opens; coordinating multiple processes over one log directory is out of
/// scope here (see ROADMAP).
/// One segment file's byte size and decoded scan (`None` = undecodable).
type DecodedSegment = (u64, Option<codec::SegmentScan>);

pub fn recover_and_compact(dir: &Path, mode: DurabilityMode) -> io::Result<RecoveredLog> {
    let durable_epoch = match mode {
        DurabilityMode::EpochSync => read_marker(dir)?.unwrap_or(0),
        _ => u64::MAX,
    };

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Newest complete checkpoint: rows covering every epoch <= its stamp.
    let recovered_checkpoint = checkpoint::load_checkpoint(dir, durable_epoch, parallelism)?;
    checkpoint::clean_orphans_for_recovery(dir)?;
    let checkpoint_epoch = recovered_checkpoint.as_ref().map(|c| c.epoch).unwrap_or(0);

    // Read and decode the segments in parallel (each segment is
    // independent), then merge in path-sorted order so the result is
    // byte-identical to a serial scan.
    let segments = list_segments(dir)?;
    let decode_workers = parallelism.min(segments.len().max(1));
    let mut slots: Vec<Option<DecodedSegment>> = Vec::new();
    slots.resize_with(segments.len(), || None);
    let decoded: Vec<Vec<(usize, io::Result<DecodedSegment>)>> = std::thread::scope(|s| {
        let segments = &segments;
        let handles: Vec<_> = (0..decode_workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < segments.len() {
                        let result = fs::read(&segments[i])
                            .map(|bytes| (bytes.len() as u64, codec::decode_segment(&bytes)));
                        out.push((i, result));
                        i += decode_workers;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("segment decoder panicked"))
            .collect()
    });
    for (i, result) in decoded.into_iter().flatten() {
        slots[i] = Some(result?);
    }

    let mut batches: Vec<(TidWord, Vec<RedoRecord>)> = Vec::new();
    let mut max_epoch_seen = 0u64;
    let mut max_generation = 0u32;
    let mut log_bytes_scanned = 0u64;
    // Only segments we actually decoded are rewritten into the compacted
    // segment and eligible for removal; foreign `wal-*.log` files are left
    // alone.
    let mut scanned: Vec<PathBuf> = Vec::new();
    let mut truncated: Vec<PathBuf> = Vec::new();
    for (path, slot) in segments.iter().zip(slots) {
        if let Some(generation) = parse_generation(path) {
            max_generation = max_generation.max(generation);
        }
        let (bytes_read, scan) = slot.expect("every segment slot filled");
        let Some(scan) = scan else {
            continue; // foreign or headerless file: leave it alone
        };
        log_bytes_scanned += bytes_read;
        if scan.truncated_tail {
            truncated.push(path.clone());
        }
        scanned.push(path.clone());
        for (tid, records) in scan.batches {
            max_epoch_seen = max_epoch_seen.max(tid.epoch());
            if tid.epoch() <= durable_epoch && tid.epoch() > checkpoint_epoch {
                batches.push((tid, records));
            }
        }
    }

    // Replay order: commit TID order makes the last writer win per key,
    // reproducing the pre-crash version order regardless of which
    // executor's segment a record came from. (Checkpoint rows replay first;
    // TID-aware replay resolves the fuzzy overlap between them and the
    // tail.)
    batches.sort_by_key(|(tid, _)| tid.version());
    let mut max_tid = batches.last().map(|(tid, _)| *tid).unwrap_or(TidWord(0));
    if let Some(ckpt) = &recovered_checkpoint {
        max_epoch_seen = max_epoch_seen.max(ckpt.cover_epoch);
        for (tid, _) in &ckpt.rows {
            if tid.version() > max_tid.version() {
                max_tid = *tid;
            }
        }
    }

    // Compact: rewrite the kept tail into a single compacted segment, fsync
    // it, then retire the scanned segments under the shared retention
    // policy.
    if !scanned.is_empty() {
        let compacted = dir.join(segment_name(usize::MAX, max_generation + 1));
        let mut out = Vec::new();
        codec::encode_header(&mut out, u32::MAX, max_generation + 1);
        for (tid, records) in &batches {
            codec::encode_batch(&mut out, *tid, records);
        }
        let tmp = dir.join("compact.tmp");
        fs::write(&tmp, &out)?;
        let file = fs::File::open(&tmp)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, &compacted)?;
        // Persist the rename before unlinking the sources: if power fails
        // between the two, the worst case is a duplicate replay (idempotent,
        // records are keyed by TID), never a lost prefix.
        sync_dir(dir)?;
        let delete: Vec<PathBuf> = scanned
            .iter()
            .filter(|p| !truncated.contains(p))
            .cloned()
            .collect();
        retire_segments(dir, &delete, &truncated)?;
    }

    Ok(RecoveredLog {
        checkpoint: recovered_checkpoint,
        batches,
        max_tid,
        max_epoch_seen,
        durable_epoch,
        truncated_segments: truncated.len(),
        log_bytes_scanned,
    })
}

/// Replays a recovered checkpoint plus log tail through `replay_one`
/// across up to `workers` threads, partitioned by reactor. Returns the
/// number of workers actually used.
///
/// The partitioning is what makes the concurrency safe *and* the result
/// deterministic: a reactor's state lives in its own tables, records for
/// the same reactor always land in the same lane (checkpoint rows first —
/// chain order — then tail records in the caller's TID order), and
/// TID-idempotent replay resolves the fuzzy checkpoint/tail overlap within
/// the lane exactly as a serial replay would. Records of *different*
/// reactors never touch the same row, so lanes proceed independently; the
/// recovered state is byte-identical for any worker count.
///
/// The first error aborts the caller's recovery; other lanes may have
/// partially applied, which is safe for the same reason replaying a torn
/// log twice is — replay is idempotent and the caller discards the boot on
/// error.
pub fn replay_partitioned<F>(
    checkpoint_rows: &[(TidWord, RedoRecord)],
    batches: &[(TidWord, Vec<RedoRecord>)],
    workers: usize,
    replay_one: F,
) -> io::Result<usize>
where
    F: Fn(TidWord, &RedoRecord) -> io::Result<()> + Sync,
{
    let total = checkpoint_rows.len() + batches.len();
    let workers = workers.max(1).min(total.max(1));
    if workers == 1 {
        for (tid, record) in checkpoint_rows {
            replay_one(*tid, record)?;
        }
        for (tid, records) in batches {
            for record in records {
                replay_one(*tid, record)?;
            }
        }
        return Ok(1);
    }
    let mut lanes: Vec<Vec<(TidWord, &RedoRecord)>> = vec![Vec::new(); workers];
    for (tid, record) in checkpoint_rows {
        lanes[record.reactor.index() % workers].push((*tid, record));
    }
    for (tid, records) in batches {
        for record in records {
            lanes[record.reactor.index() % workers].push((*tid, record));
        }
    }
    std::thread::scope(|s| {
        let replay_one = &replay_one;
        let handles: Vec<_> = lanes
            .iter()
            .map(|lane| {
                s.spawn(move || {
                    for (tid, record) in lane {
                        replay_one(*tid, record)?;
                    }
                    Ok::<(), io::Error>(())
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("replay worker panicked")?;
        }
        Ok::<(), io::Error>(())
    })?;
    Ok(workers)
}

// ---------------------------------------------------------------------------
// Segment and marker files
// ---------------------------------------------------------------------------

/// Makes renames and unlinks inside `dir` durable by fsyncing the directory
/// itself (file-content fsyncs do not cover directory metadata). Opening a
/// directory handle can fail on exotic platforms; that is treated as "no
/// directory sync available" rather than an error.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    match fs::File::open(dir) {
        Ok(handle) => handle.sync_all(),
        Err(_) => Ok(()),
    }
}

fn segment_name(executor: usize, generation: u32) -> String {
    if executor == usize::MAX {
        format!("wal-compact-g{generation:06}.log")
    } else {
        format!("wal-e{executor:04}-g{generation:06}.log")
    }
}

fn parse_generation(path: &Path) -> Option<u32> {
    let name = path.file_name()?.to_str()?;
    let g = name.rfind("-g")?;
    name[g + 2..].strip_suffix(".log")?.parse().ok()
}

fn next_generation(dir: &Path) -> io::Result<u32> {
    let mut max = 0u32;
    if dir.exists() {
        for entry in fs::read_dir(dir)? {
            if let Some(generation) = parse_generation(&entry?.path()) {
                max = max.max(generation);
            }
        }
    }
    Ok(max + 1)
}

/// Reads the durable-epoch marker; `None` when absent or corrupt (both mean
/// "nothing was ever synced").
fn read_marker(dir: &Path) -> io::Result<Option<u64>> {
    let path = dir.join(MARKER_FILE);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() != 20 || bytes[..8] != MARKER_MAGIC {
        return Ok(None);
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("len 8"));
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("len 4"));
    if codec::crc32(&bytes[8..16]) != crc {
        return Ok(None);
    }
    Ok(Some(epoch))
}

/// Atomically replaces the durable-epoch marker (write temp, fsync,
/// rename).
fn write_marker(dir: &Path, epoch: u64) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(&MARKER_MAGIC);
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&codec::crc32(&epoch.to_le_bytes()).to_le_bytes());
    let tmp = dir.join("durable_epoch.tmp");
    fs::write(&tmp, &bytes)?;
    let file = fs::File::open(&tmp)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, dir.join(MARKER_FILE))?;
    sync_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::{ContainerId, Key, ReactorId, Value};
    use reactdb_storage::Tuple;
    use reactdb_txn::LogSink;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reactdb-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(reactor: u64, key: i64, value: f64) -> RedoRecord {
        RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(reactor),
            relation: "savings".into(),
            key: Key::Int(key),
            payload: reactdb_txn::RedoPayload::Full(Tuple::of([
                Value::Int(key),
                Value::Float(value),
            ])),
        }
    }

    fn open(dir: &Path, mode: DurabilityMode, epoch: &Arc<EpochManager>) -> Arc<Wal> {
        let config = DurabilityConfig {
            mode,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        Wal::open(&config, 2, Arc::clone(epoch)).unwrap().unwrap()
    }

    #[test]
    fn off_mode_opens_nothing() {
        let epoch = Arc::new(EpochManager::new());
        assert!(Wal::open(&DurabilityConfig::off(), 2, epoch)
            .unwrap()
            .is_none());
    }

    #[test]
    fn epoch_sync_recovers_only_fenced_epochs() {
        let dir = temp_dir("fence");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);

        // Epoch 1: two commits, then the epoch advances and we group-commit.
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 10.0)]);
        wal.writer(1)
            .log_commit(TidWord::committed(1, 2), &[record(1, 2, 20.0)]);
        epoch.advance();
        let durable = wal.sync().unwrap();
        assert_eq!(durable, 1);
        assert_eq!(wal.durable_epoch(), 1);

        // Epoch 2: a commit that is never synced — lost by the crash.
        wal.writer(0)
            .log_commit(TidWord::committed(2, 1), &[record(0, 1, 99.0)]);
        drop(wal); // crash: no shutdown flush

        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert_eq!(recovered.durable_epoch, 1);
        assert_eq!(recovered.batches.len(), 2);
        assert_eq!(recovered.max_tid, TidWord::committed(1, 2));
        assert!(recovered
            .batches
            .windows(2)
            .all(|w| w[0].0.version() < w[1].0.version()));
        // The unsynced epoch-2 record never reached the OS (it was only in
        // the writer buffer), so even max_epoch_seen is 1 here.
        assert_eq!(recovered.max_epoch_seen, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn discarded_frames_do_not_resurrect_after_compaction() {
        let dir = temp_dir("resurrect");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 10.0)]);
        epoch.advance(); // now 2
        wal.sync().unwrap(); // durable = 1
        wal.writer(0)
            .log_commit(TidWord::committed(2, 1), &[record(0, 1, 50.0)]);
        // The epoch-2 frame reaches the OS via a buffered-style flush but
        // its epoch is never fenced: it must be discarded by recovery.
        wal.writer(0).flush(false).unwrap();
        drop(wal);

        let first = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert_eq!(first.batches.len(), 1);
        assert_eq!(
            first.max_epoch_seen, 2,
            "discarded frame's epoch is observed"
        );

        // A later instance syncs past epoch 2; the discarded frame must not
        // reappear because compaction removed its segment.
        let epoch2 = Arc::new(EpochManager::new());
        epoch2.advance_to(5);
        let wal2 = open(&dir, DurabilityMode::EpochSync, &epoch2);
        wal2.writer(0)
            .log_commit(TidWord::committed(5, 1), &[record(0, 9, 1.0)]);
        epoch2.advance();
        wal2.sync().unwrap(); // durable = 5 > 2
        drop(wal2);

        let second = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert_eq!(second.batches.len(), 2);
        assert!(
            second
                .batches
                .iter()
                .flat_map(|(_, rs)| rs.iter())
                .all(|r| r.image().map(|t| t.at(1).as_float()) != Some(50.0)),
            "discarded epoch-2 write resurfaced"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buffered_mode_recovers_flushed_frames_without_marker() {
        let dir = temp_dir("buffered");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::Buffered, &epoch);
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 10.0)]);
        wal.sync().unwrap();
        // Never-flushed frame: lost on crash.
        wal.writer(1)
            .log_commit(TidWord::committed(1, 2), &[record(1, 2, 20.0)]);
        drop(wal);
        let recovered = recover_and_compact(&dir, DurabilityMode::Buffered).unwrap();
        assert_eq!(recovered.batches.len(), 1);
        assert_eq!(recovered.durable_epoch, u64::MAX);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_flush_covers_the_last_epoch() {
        let dir = temp_dir("shutdown");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 10.0)]);
        wal.shutdown(true);
        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert_eq!(
            recovered.batches.len(),
            1,
            "clean shutdown persists everything"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_dir_state_detection() {
        let dir = temp_dir("state");
        assert!(!log_dir_has_state(&dir).unwrap());
        assert!(!log_dir_has_state(&dir.join("missing")).unwrap());
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);
        drop(wal);
        assert!(log_dir_has_state(&dir).unwrap(), "segments count as state");
        for entry in fs::read_dir(&dir).unwrap() {
            let _ = fs::remove_file(entry.unwrap().path());
        }
        write_marker(&dir, 3).unwrap();
        assert!(
            log_dir_has_state(&dir).unwrap(),
            "marker alone counts as state"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_group_commit_is_counted() {
        let dir = temp_dir("sync-failure");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 1.0)]);
        epoch.advance();
        // Deleting the directory makes the marker's temp-file write fail;
        // the error must surface *and* be counted.
        fs::remove_dir_all(&dir).unwrap();
        assert!(wal.sync().is_err());
        assert_eq!(wal.stats().sync_failures(), 1);
        assert_eq!(
            wal.durable_epoch(),
            0,
            "durable epoch must not advance on failure"
        );
    }

    #[test]
    fn log_dir_lock_is_exclusive_while_wal_lives() {
        let dir = temp_dir("lock");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);
        // A second instance — same process or another — must be refused
        // while the first is alive.
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        assert!(
            Wal::open(&config, 1, Arc::clone(&epoch)).is_err(),
            "second live WAL in one directory must be refused"
        );
        assert!(LogDirLock::acquire(&dir).is_err());
        drop(wal);
        // The lock dies with the instance: reopening afterwards succeeds.
        let wal2 = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        drop(wal2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_file_does_not_count_as_wal_state() {
        let dir = temp_dir("lock-state");
        let lock = LogDirLock::acquire(&dir).unwrap();
        assert!(
            !log_dir_has_state(&dir).unwrap(),
            "LOCK alone is not WAL state"
        );
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wait_durable_kicks_a_group_commit_without_a_daemon() {
        let dir = temp_dir("wait-kick");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 10.0)]);
        assert_eq!(wal.durable_epoch(), 0);
        // No daemon (interval 0): the waiter must drive the sync itself.
        let durable = wal.wait_durable(1).unwrap();
        assert!(durable >= 1);
        assert!(wal.durable_epoch() >= 1);
        assert_eq!(wal.stats().durable_waits(), 1);
        // Already-covered epochs return immediately and are not counted.
        wal.wait_durable(1).unwrap();
        assert_eq!(wal.stats().durable_waits(), 1);
        drop(wal);
        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert_eq!(
            recovered.batches.len(),
            1,
            "the awaited commit is on disk despite the crash-style drop"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wait_durable_waiters_are_woken_by_the_daemon() {
        let dir = temp_dir("wait-daemon");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::EpochSync, &epoch);
        wal.start_daemon(2);
        // The daemon only syncs when the epoch moves; emulate the engine's
        // background advancer.
        let advancer = epoch.start_advancer(Duration::from_millis(1));
        wal.writer(0)
            .log_commit(TidWord::committed(epoch.current(), 1), &[record(0, 1, 1.0)]);
        let target = epoch.current();
        let durable = wal.wait_durable(target).unwrap();
        assert!(durable >= target);
        epoch.stop();
        let _ = advancer.join();
        wal.shutdown(true);
        drop(wal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wait_durable_in_buffered_mode_degrades_to_flush() {
        let dir = temp_dir("wait-buffered");
        let epoch = Arc::new(EpochManager::new());
        let wal = open(&dir, DurabilityMode::Buffered, &epoch);
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 1.0)]);
        // Must not hang: buffered mode has no durable-epoch notion.
        wal.wait_durable(u64::MAX).unwrap();
        drop(wal);
        let recovered = recover_and_compact(&dir, DurabilityMode::Buffered).unwrap();
        assert_eq!(recovered.batches.len(), 1, "the flush reached the OS");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_writer_roots_chains_and_rebases_after_rotation() {
        use reactdb_txn::{LogSink, RedoPayload, RowDelta};
        let dir = temp_dir("delta-rebase");
        let epoch = Arc::new(EpochManager::new());
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            delta_logging: true,
            ..DurabilityConfig::default()
        };
        let wal = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        assert!(wal.writer(0).delta_logging());

        let image = |v: f64| {
            Tuple::of([
                Value::Int(1),
                Value::Str("wide-filler-wide-filler-wide-filler".into()),
                Value::Float(v),
            ])
        };
        let delta_record = |base: TidWord, before: &Tuple, after: &Tuple| RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(0),
            relation: "savings".into(),
            key: Key::Int(1),
            payload: RedoPayload::Delta(RowDelta {
                base,
                delta: reactdb_storage::TupleDelta::diff(before, after).unwrap(),
                image: Some(after.clone()),
            }),
        };
        let full_record = |after: &Tuple| RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(0),
            relation: "savings".into(),
            key: Key::Int(1),
            payload: RedoPayload::Full(after.clone()),
        };

        let (v1, v2, v3, v4) = (image(1.0), image(2.0), image(3.0), image(4.0));
        // Insert logs full and roots the key; the repeat update stays a
        // delta.
        wal.writer(0)
            .log_commit(TidWord::committed(1, 1), &[full_record(&v1)]);
        wal.writer(0).log_commit(
            TidWord::committed(1, 2),
            &[delta_record(TidWord::committed(1, 1), &v1, &v2)],
        );
        assert_eq!(wal.stats().delta_records(), 1);
        assert!(
            wal.stats().delta_bytes_saved() > 0,
            "a one-field delta over a wide row saves bytes"
        );
        epoch.advance();
        wal.sync().unwrap();

        // Rotation clears the roots: the next delta for the key is re-based
        // to a full image even though the coordinator shipped a delta.
        wal.rotate_segments().unwrap();
        wal.writer(0).log_commit(
            TidWord::committed(2, 1),
            &[delta_record(TidWord::committed(1, 2), &v2, &v3)],
        );
        assert_eq!(
            wal.stats().delta_records(),
            1,
            "the first post-rotation touch is re-based, not delta-logged"
        );
        // ...and the key is rooted again, so the next update is a delta.
        wal.writer(0).log_commit(
            TidWord::committed(2, 2),
            &[delta_record(TidWord::committed(2, 1), &v3, &v4)],
        );
        assert_eq!(wal.stats().delta_records(), 2);
        epoch.advance();
        wal.sync().unwrap();
        drop(wal); // crash

        // Recovery: the decoded chain replays to the exact final image.
        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert_eq!(recovered.batches.len(), 4);
        let kinds: Vec<bool> = recovered
            .batches
            .iter()
            .map(|(_, records)| records[0].is_delta())
            .collect();
        assert_eq!(
            kinds,
            vec![false, true, false, true],
            "full roots bracket the rotation; deltas ride on them"
        );
        let schema = reactdb_storage::Schema::of(
            &[
                ("id", reactdb_storage::ColumnType::Int),
                ("pad", reactdb_storage::ColumnType::Str),
                ("v", reactdb_storage::ColumnType::Float),
            ],
            &["id"],
        );
        let table = reactdb_storage::Table::new("savings", schema);
        for (tid, records) in &recovered.batches {
            for r in records {
                match &r.payload {
                    RedoPayload::Full(t) => table.replay(&r.key, Some(t), *tid),
                    RedoPayload::Delete => table.replay(&r.key, None, *tid),
                    RedoPayload::Delta(d) => {
                        table.replay_delta(&r.key, d.base, &d.delta, *tid).unwrap()
                    }
                }
            }
        }
        assert_eq!(table.get(&Key::Int(1)).unwrap().read_unguarded(), v4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn marker_roundtrip_and_corruption_handling() {
        let dir = temp_dir("marker");
        assert_eq!(read_marker(&dir).unwrap(), None);
        write_marker(&dir, 17).unwrap();
        assert_eq!(read_marker(&dir).unwrap(), Some(17));
        fs::write(dir.join(MARKER_FILE), b"garbage").unwrap();
        assert_eq!(read_marker(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_directory_recovers_cleanly() {
        let dir = temp_dir("empty");
        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert!(recovered.batches.is_empty());
        assert_eq!(recovered.max_tid, TidWord(0));
        let gone = dir.join("never-created");
        let recovered = recover_and_compact(&gone, DurabilityMode::EpochSync).unwrap();
        assert!(recovered.batches.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generations_do_not_collide_across_instances() {
        let dir = temp_dir("generations");
        let epoch = Arc::new(EpochManager::new());
        let wal1 = open(&dir, DurabilityMode::EpochSync, &epoch);
        wal1.writer(0)
            .log_commit(TidWord::committed(1, 1), &[record(0, 1, 1.0)]);
        wal1.shutdown(true);
        drop(wal1);
        // A second instance in the same directory must not clobber the first
        // instance's segments.
        let wal2 = open(&dir, DurabilityMode::EpochSync, &epoch);
        wal2.writer(0)
            .log_commit(TidWord::committed(epoch.current(), 1), &[record(0, 2, 2.0)]);
        wal2.shutdown(true);
        drop(wal2);
        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        assert_eq!(recovered.batches.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
