//! `reactdb-loadgen`: closed/open-loop load generator driving a
//! `reactdb-server` over the wire protocol.
//!
//! One OS thread per connection (each [`WireClient`] adds its reader
//! thread), which comfortably sustains hundreds to thousands of concurrent
//! connections on Linux. Each connection runs either a **closed loop** — a
//! pipelined window of `--pipeline` requests kept full, the wire analogue
//! of the paper's multiprogramming level — or an **open loop** that submits
//! on a fixed schedule (`--rate`, split across connections) regardless of
//! completions, the mode that exposes queueing collapse.
//!
//! Workload mixes (SmallBank or YCSB) reuse the builtin schemas served by
//! `reactdb-server`; a slice of requests (1 in 8 by default) asks for a
//! durable acknowledgement so both ack paths stay exercised. Latency is
//! submit-to-resolution per request, recorded into an obs
//! [`ShardedHistogram`] and reported as percentiles.
//!
//! `--kill-one` abruptly severs one connection mid-run with a full
//! pipeline, then verifies the server neither wedged (remaining
//! connections keep committing, a fresh connection still serves) nor
//! leaked the dead connection's in-flight transactions (the server's
//! `net_requests_in_flight` gauge returns to zero). `--bench-json` appends
//! `server/throughput_txns_per_s` and `server/p99_latency_us` in the same
//! JSON-lines schema CI's other bench keys use.
//!
//! ```text
//! reactdb-loadgen --spawn --workload smallbank --scale 500 \
//!     --connections 200 --pipeline 4 --secs 5 --kill-one
//! ```

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use reactdb_client::{AckLevel, WireClient, WireHandle};
use reactdb_common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb_obs::ShardedHistogram;
use reactdb_server::{Server, ServerConfig};
use reactdb_workloads::{smallbank, ycsb};

struct Opts {
    addr: Option<String>,
    spawn: bool,
    workload: String,
    scale: usize,
    executors: usize,
    connections: usize,
    mode: String,
    pipeline: usize,
    rate: f64,
    secs: u64,
    durable_every: u64,
    ack: AckLevel,
    follower_reads: Option<String>,
    kill_one: bool,
    bench_json: Option<String>,
    wal_dir: Option<String>,
}

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "flags: --addr HOST:PORT | --spawn, --workload smallbank|ycsb, --scale N, \
         --executors N, --connections N, --mode closed|open, --pipeline N, --rate R, \
         --secs N, --durable-every N (0 = never), --ack validated|durable|replicated, \
         --follower-reads HOST:PORT, --kill-one, --bench-json PATH, --wal-dir PATH"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: None,
        spawn: false,
        workload: "smallbank".to_string(),
        scale: 500,
        executors: 4,
        connections: 200,
        mode: "closed".to_string(),
        pipeline: 4,
        rate: 20_000.0,
        secs: 5,
        durable_every: 8,
        ack: AckLevel::Durable,
        follower_reads: None,
        kill_one: false,
        bench_json: None,
        wal_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage_and_exit(&format!("{name} needs a value")))
        };
        macro_rules! parse_num {
            ($name:literal) => {
                value($name)
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit(concat!($name, " wants a number")))
            };
        }
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--spawn" => opts.spawn = true,
            "--workload" => opts.workload = value("--workload"),
            "--scale" => opts.scale = parse_num!("--scale"),
            "--executors" => opts.executors = parse_num!("--executors"),
            "--connections" => opts.connections = parse_num!("--connections"),
            "--mode" => opts.mode = value("--mode"),
            "--pipeline" => opts.pipeline = parse_num!("--pipeline"),
            "--rate" => opts.rate = parse_num!("--rate"),
            "--secs" => opts.secs = parse_num!("--secs"),
            "--durable-every" => opts.durable_every = parse_num!("--durable-every"),
            "--ack" => {
                opts.ack = AckLevel::parse(&value("--ack"))
                    .unwrap_or_else(|| usage_and_exit("--ack wants validated|durable|replicated"))
            }
            "--follower-reads" => opts.follower_reads = Some(value("--follower-reads")),
            "--kill-one" => opts.kill_one = true,
            "--bench-json" => opts.bench_json = Some(value("--bench-json")),
            "--wal-dir" => opts.wal_dir = Some(value("--wal-dir")),
            other => usage_and_exit(&format!("unknown flag {other}")),
        }
    }
    if opts.addr.is_none() && !opts.spawn {
        usage_and_exit("need --addr or --spawn");
    }
    if !matches!(opts.mode.as_str(), "closed" | "open") {
        usage_and_exit("--mode wants closed or open");
    }
    opts
}

/// One workload invocation: target reactor, procedure, arguments.
fn next_call(workload: &str, scale: usize, rng: &mut StdRng) -> (String, &'static str, Vec<Value>) {
    match workload {
        "smallbank" => {
            let c = rng.gen_range(0..scale);
            let name = smallbank::customer_name(c);
            match rng.gen_range(0..100u32) {
                0..=24 => (name, "balance", vec![]),
                25..=49 => (
                    name,
                    "deposit_checking",
                    vec![Value::Float(rng.gen_range(1.0..100.0))],
                ),
                50..=74 => (
                    name,
                    "transact_saving",
                    vec![Value::Float(rng.gen_range(-20.0..100.0))],
                ),
                75..=84 => (
                    name,
                    "write_check",
                    vec![Value::Float(rng.gen_range(1.0..50.0))],
                ),
                85..=89 => {
                    let dst = smallbank::customer_name(rng.gen_range(0..scale));
                    (name, "amalgamate", vec![Value::Str(dst)])
                }
                _ => {
                    let dst = smallbank::customer_name(rng.gen_range(0..scale));
                    (
                        name.clone(),
                        "transfer",
                        vec![
                            Value::Str(name),
                            Value::Str(dst),
                            Value::Float(rng.gen_range(1.0..10.0)),
                            Value::Bool(false),
                        ],
                    )
                }
            }
        }
        "ycsb" => {
            let k = rng.gen_range(0..scale);
            let name = ycsb::key_name(k);
            match rng.gen_range(0..100u32) {
                0..=49 => (name, "read", vec![]),
                50..=89 => (name, "update", vec![Value::Str("w".repeat(8))]),
                _ => {
                    let mut keys = vec![k];
                    while keys.len() < 4 {
                        let n = rng.gen_range(0..scale);
                        if !keys.contains(&n) {
                            keys.push(n);
                        }
                    }
                    let (target, args) = ycsb::multi_update_invocation(&keys);
                    (target, "multi_update", args)
                }
            }
        }
        other => usage_and_exit(&format!("unknown workload {other}")),
    }
}

/// Shared run-wide counters.
#[derive(Default)]
struct RunStats {
    committed: AtomicU64,
    aborted: AtomicU64,
    transport_errors: AtomicU64,
}

struct InFlight {
    handle: WireHandle,
    submitted: Instant,
}

/// Waits out one in-flight request, recording its outcome and latency.
fn reap(inflight: InFlight, stats: &RunStats, latency: &ShardedHistogram, shard: usize) {
    let result = inflight
        .handle
        .wait_timeout(Duration::from_secs(60))
        .unwrap_or_else(|| Err(reactdb_common::TxnError::Runtime("reap timeout".into())));
    latency.record(shard, inflight.submitted.elapsed().as_nanos() as u64);
    match result {
        Ok(_) => stats.committed.fetch_add(1, Ordering::Relaxed),
        Err(reactdb_common::TxnError::Runtime(_)) => {
            stats.transport_errors.fetch_add(1, Ordering::Relaxed)
        }
        Err(_) => stats.aborted.fetch_add(1, Ordering::Relaxed),
    };
}

#[allow(clippy::too_many_arguments)]
fn connection_loop(
    conn_idx: usize,
    opts: &Opts,
    addr: SocketAddr,
    stop: &AtomicBool,
    stats: &RunStats,
    latency: &ShardedHistogram,
    kill_at: Option<Instant>,
) {
    let client = match WireClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("conn {conn_idx}: connect failed: {e}");
            stats.transport_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    // Optional second connection to a follower: read-only procedures are
    // routed there (snapshot-epoch reads), writes stay on the primary.
    let follower = opts.follower_reads.as_ref().and_then(|addr| {
        match addr.parse::<SocketAddr>().ok().map(WireClient::connect) {
            Some(Ok(c)) => Some(c),
            _ => {
                eprintln!("conn {conn_idx}: follower connect failed; reads stay on the primary");
                None
            }
        }
    });
    let mut rng = StdRng::seed_from_u64(0x10ad + conn_idx as u64);
    let mut window: Vec<InFlight> = Vec::with_capacity(opts.pipeline);
    let mut sent = 0u64;
    // Open-loop pacing: this connection's share of the target rate.
    let interval = Duration::from_secs_f64(opts.connections as f64 / opts.rate.max(1.0));
    let mut next_send = Instant::now();

    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(at) = kill_at {
            if Instant::now() >= at {
                // Abrupt mid-pipeline kill: drop the client with requests
                // still in flight. The socket closes without any protocol
                // goodbye; the server must clean up on its own.
                drop(window);
                drop(client);
                return;
            }
        }
        if opts.mode == "open" {
            let now = Instant::now();
            if now < next_send {
                std::thread::sleep((next_send - now).min(Duration::from_millis(5)));
                continue;
            }
            next_send += interval;
        }
        // Every Nth request uses the configured --ack level (default
        // durable) so the stronger ack paths stay exercised; the rest are
        // validation-acked.
        let ack = if opts.durable_every > 0 && sent % opts.durable_every == opts.durable_every - 1 {
            opts.ack
        } else {
            AckLevel::Validated
        };
        let (reactor, procedure, args) = next_call(&opts.workload, opts.scale, &mut rng);
        // Read-only procedures go to the follower when one is configured;
        // a follower read is always validation-acked (nothing to make
        // durable).
        let read_only = matches!(procedure, "balance" | "read");
        let (target, ack) = match (&follower, read_only) {
            (Some(follower), true) => (follower, AckLevel::Validated),
            _ => (&client, ack),
        };
        match target.submit_with_ack(&reactor, procedure, args, ack) {
            Ok(handle) => {
                sent += 1;
                window.push(InFlight {
                    handle,
                    submitted: Instant::now(),
                });
            }
            Err(_) => {
                stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                return; // connection is dead
            }
        }
        // Closed loop blocks once the window is full; open loop only
        // reaps opportunistically (bounded by a generous cap so a slow
        // server cannot make the window grow without limit).
        let cap = if opts.mode == "closed" {
            opts.pipeline
        } else {
            opts.pipeline.max(256)
        };
        if opts.mode == "open" {
            // Responses come back in submission order per connection, so
            // reaping resolved requests from the front is lossless.
            while window.first().is_some_and(|f| f.handle.is_resolved()) {
                let front = window.remove(0);
                reap(front, stats, latency, conn_idx);
            }
        }
        while window.len() >= cap {
            let front = window.remove(0);
            reap(front, stats, latency, conn_idx);
        }
    }
    // Drain what's still in flight.
    for inflight in window {
        reap(inflight, stats, latency, conn_idx);
    }
}

fn fetch_gauge(metrics_text: &str, name: &str) -> Option<f64> {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

fn main() {
    let opts = Arc::new(parse_opts());

    // Optionally spawn an embedded server (single-process smoke mode).
    let mut spawned: Option<(Server, Arc<reactdb_engine::ReactDB>)> = None;
    let addr: SocketAddr = if opts.spawn {
        let mut config = DeploymentConfig::shared_nothing(opts.executors);
        if let Some(dir) = &opts.wal_dir {
            config = config
                .with_durability(DurabilityConfig::epoch_sync(dir.as_str()).with_interval_ms(5));
        }
        let spec = match opts.workload.as_str() {
            "smallbank" => smallbank::spec(opts.scale),
            "ycsb" => ycsb::spec(opts.scale),
            other => usage_and_exit(&format!("unknown workload {other}")),
        };
        let db = reactdb_engine::ReactDB::boot(spec, config);
        match opts.workload.as_str() {
            "smallbank" => smallbank::load(&db, opts.scale).expect("load"),
            "ycsb" => ycsb::load(&db, opts.scale).expect("load"),
            _ => unreachable!(),
        }
        let db = Arc::new(db);
        let server = Server::start(
            Arc::clone(&db),
            ServerConfig::default().with_workers(opts.executors.min(4)),
        )
        .expect("start server");
        let addr = server.local_addr();
        eprintln!("spawned embedded server on {addr}");
        spawned = Some((server, db));
        addr
    } else {
        opts.addr
            .as_ref()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| usage_and_exit("--addr wants HOST:PORT"))
    };

    let stats = Arc::new(RunStats::default());
    let latency = Arc::new(ShardedHistogram::new(opts.connections.max(1)));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let kill_at = opts
        .kill_one
        .then(|| started + Duration::from_secs(opts.secs.max(2) / 2));

    eprintln!(
        "driving {} {}-loop connections (pipeline {}) against {addr} for {}s",
        opts.connections, opts.mode, opts.pipeline, opts.secs
    );
    let threads: Vec<_> = (0..opts.connections)
        .map(|conn_idx| {
            let opts = Arc::clone(&opts);
            let stats = Arc::clone(&stats);
            let latency = Arc::clone(&latency);
            let stop = Arc::clone(&stop);
            // Connection 0 is the designated victim of --kill-one.
            let kill_at = if conn_idx == 0 { kill_at } else { None };
            std::thread::Builder::new()
                .name(format!("loadgen-{conn_idx}"))
                .spawn(move || {
                    connection_loop(conn_idx, &opts, addr, &stop, &stats, &latency, kill_at)
                })
                .expect("spawn connection thread")
        })
        .collect();

    std::thread::sleep(Duration::from_secs(opts.secs));
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    let elapsed = started.elapsed().as_secs_f64();

    let committed = stats.committed.load(Ordering::Relaxed);
    let aborted = stats.aborted.load(Ordering::Relaxed);
    let transport = stats.transport_errors.load(Ordering::Relaxed);
    let throughput = committed as f64 / elapsed;
    let h = latency.merged();
    let pct = |p: f64| h.percentile(p) as f64 / 1_000.0;

    println!("connections:        {}", opts.connections);
    println!("elapsed_s:          {elapsed:.2}");
    println!("committed:          {committed}");
    println!("aborted:            {aborted}");
    println!("transport_errors:   {transport}");
    println!("throughput_txns_s:  {throughput:.0}");
    println!(
        "latency_us: p50 {:.0}  p90 {:.0}  p99 {:.0}  p999 {:.0}  max {:.0}",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        pct(0.999),
        h.max() as f64 / 1_000.0
    );

    let mut failed = false;
    if committed == 0 {
        eprintln!("FAIL: no transaction committed");
        failed = true;
    }

    // Post-run health check: a fresh connection must still serve, and the
    // server's in-flight gauge must return to zero (nothing leaked by the
    // run — or by the --kill-one severed connection).
    match WireClient::connect(addr) {
        Ok(probe) => {
            if let Err(e) = probe.ping() {
                eprintln!("FAIL: post-run ping failed: {e}");
                failed = true;
            }
            let mut in_flight = f64::MAX;
            for _ in 0..40 {
                match probe.metrics_prometheus() {
                    Ok(text) => {
                        in_flight = fetch_gauge(&text, "reactdb_net_requests_in_flight")
                            .unwrap_or(f64::MAX);
                        if in_flight == 0.0 {
                            break;
                        }
                    }
                    Err(e) => {
                        eprintln!("FAIL: metrics fetch failed: {e}");
                        failed = true;
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            if in_flight != 0.0 {
                eprintln!("FAIL: server still reports {in_flight} in-flight requests after drain");
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("FAIL: post-run connect failed: {e}");
            failed = true;
        }
    }
    if opts.kill_one && transport == 0 {
        // The severed connection must have observed at least its own death.
        eprintln!("note: --kill-one run recorded no transport errors (victim died cleanly before submitting?)");
    }

    // With a follower in the loop, report how far behind it ended the run;
    // scripts and the CI replication gate parse this line.
    if let Some(follower_addr) = &opts.follower_reads {
        match follower_addr
            .parse()
            .ok()
            .and_then(|a: std::net::SocketAddr| WireClient::connect(a).ok())
            .and_then(|probe| probe.metrics_prometheus().ok())
        {
            Some(text) => {
                let lag = fetch_gauge(&text, "reactdb_repl_follower_lag_epochs").unwrap_or(-1.0);
                let applied = fetch_gauge(&text, "reactdb_repl_applied_epoch").unwrap_or(-1.0);
                println!("follower_lag_epochs: {lag:.0}  (applied epoch {applied:.0})");
                if applied <= 0.0 {
                    eprintln!("FAIL: follower applied nothing during the run");
                    failed = true;
                }
            }
            None => {
                eprintln!("FAIL: could not scrape follower metrics from {follower_addr}");
                failed = true;
            }
        }
    }

    // With replicated acks in the mix, report the primary's quorum lag —
    // how far the durable epoch ran ahead of the quorum-acked epoch when
    // the run ended. Scripts and the CI replication gate parse this line.
    let mut quorum_epoch_lag = None;
    if opts.ack == AckLevel::Replicated {
        match WireClient::connect(addr)
            .ok()
            .and_then(|probe| probe.metrics_prometheus().ok())
        {
            Some(text) => {
                let lag = fetch_gauge(&text, "reactdb_repl_quorum_epoch_lag").unwrap_or(-1.0);
                let quorum = fetch_gauge(&text, "reactdb_repl_quorum_epoch").unwrap_or(-1.0);
                println!("quorum_epoch_lag: {lag:.0}  (quorum epoch {quorum:.0})");
                if quorum <= 0.0 {
                    eprintln!("FAIL: replicated-acked run ended with no quorum-acked epoch");
                    failed = true;
                }
                quorum_epoch_lag = Some(lag);
            }
            None => {
                eprintln!("FAIL: could not scrape primary metrics for the quorum lag");
                failed = true;
            }
        }
    }

    if let Some(path) = &opts.bench_json {
        criterion::append_json_line(path, "server/throughput_txns_per_s", throughput, committed);
        criterion::append_json_line(path, "server/p99_latency_us", pct(0.99), committed);
        if let Some(lag) = quorum_epoch_lag {
            criterion::append_json_line(path, "repl/quorum_epoch_lag", lag, committed);
        }
    }

    if let Some((server, db)) = spawned {
        server.shutdown();
        drop(db);
    }
    std::process::exit(if failed { 1 } else { 0 });
}
