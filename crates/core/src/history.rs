//! Conflict-serializability formalism for the reactor model (§2.3) and its
//! projection into the classic transactional model (Theorem 2.7).
//!
//! The paper formalises transactions in the reactor model as partial orders
//! of sub-transactions, each a partial order of reads/writes on data items
//! that are *disjoint across reactors*. Serializability is defined exactly
//! as in Bernstein et al. but with sub-transactions in the role of
//! operations and with conflicts determined by their leaf-level basic
//! operations. The projection `P(·)` renames every item `x` of reactor `k`
//! to `k ◦ x` and flattens sub-transactions into plain reads and writes;
//! Theorem 2.7 states that a reactor-model history is serializable iff its
//! projection is.
//!
//! This module provides executable versions of these definitions over
//! *observed histories* (interleaved sequences of basic operations tagged
//! with their transaction, sub-transaction and reactor), a conflict-graph
//! serializability test for both models, and therefore an executable check
//! of the theorem that the test suite exercises with random histories.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

/// A basic operation observed during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    /// Root transaction identifier (`i` in `ST_{i,j}^k`).
    pub txn: u64,
    /// Sub-transaction identifier within the transaction (`j`).
    pub sub: u64,
    /// Reactor the sub-transaction executed on (`k`).
    pub reactor: u64,
    /// Data item within the reactor (`x`). Items of different reactors are
    /// disjoint even when the numeric ids collide.
    pub item: u64,
    /// True for a write, false for a read.
    pub is_write: bool,
}

impl Op {
    /// A read of `item` on `reactor` by sub-transaction `(txn, sub)`.
    pub fn read(txn: u64, sub: u64, reactor: u64, item: u64) -> Self {
        Self {
            txn,
            sub,
            reactor,
            item,
            is_write: false,
        }
    }

    /// A write of `item` on `reactor` by sub-transaction `(txn, sub)`.
    pub fn write(txn: u64, sub: u64, reactor: u64, item: u64) -> Self {
        Self {
            txn,
            sub,
            reactor,
            item,
            is_write: true,
        }
    }

    /// True if two operations conflict: same reactor, same item, at least
    /// one write, different transactions.
    pub fn conflicts_with(&self, other: &Op) -> bool {
        self.txn != other.txn
            && self.reactor == other.reactor
            && self.item == other.item
            && (self.is_write || other.is_write)
    }
}

/// An operation of the classic transactional model produced by the
/// projection `P(·)` of Definition 2.3: the item is the concatenation
/// `reactor ◦ item`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassicOp {
    /// Transaction identifier.
    pub txn: u64,
    /// Projected item name `k ◦ x`, represented as the pair.
    pub item: (u64, u64),
    /// True for a write.
    pub is_write: bool,
}

impl ClassicOp {
    /// True if two classic operations conflict.
    pub fn conflicts_with(&self, other: &ClassicOp) -> bool {
        self.txn != other.txn && self.item == other.item && (self.is_write || other.is_write)
    }
}

/// An observed history in the reactor model: the basic operations of a set
/// of committed transactions, in the total order in which they took effect.
///
/// Using a total order loses no generality for the conflict-serializability
/// test: the induced partial orders of Definitions 2.1–2.6 order exactly the
/// conflicting pairs, and those are recovered from the sequence positions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    ops: Vec<Op>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a history from a sequence of operations.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Self { ops }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Identifiers of the transactions appearing in the history.
    pub fn transactions(&self) -> Vec<u64> {
        let mut txns: Vec<u64> = self
            .ops
            .iter()
            .map(|o| o.txn)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        txns.sort_unstable();
        txns
    }

    /// Projects the history into the classic transactional model
    /// (Definitions 2.3–2.6): sub-transactions are flattened and items are
    /// renamed to `reactor ◦ item`, preserving the order of conflicting
    /// operations.
    pub fn project(&self) -> ClassicHistory {
        ClassicHistory {
            ops: self
                .ops
                .iter()
                .map(|o| ClassicOp {
                    txn: o.txn,
                    item: (o.reactor, o.item),
                    is_write: o.is_write,
                })
                .collect(),
        }
    }

    /// The serializability graph of the history in the reactor model: nodes
    /// are transactions; there is an edge `Ti -> Tj` when a sub-transaction
    /// of `Ti` performs an operation that precedes and conflicts with an
    /// operation of a sub-transaction of `Tj`.
    pub fn serializability_graph(&self) -> ConflictGraph {
        let mut graph = ConflictGraph::new(self.transactions());
        for (a_idx, a) in self.ops.iter().enumerate() {
            for b in &self.ops[a_idx + 1..] {
                if a.conflicts_with(b) {
                    graph.add_edge(a.txn, b.txn);
                }
            }
        }
        graph
    }

    /// True if the history is conflict-serializable in the reactor model.
    pub fn is_serializable(&self) -> bool {
        self.serializability_graph().is_acyclic()
    }
}

/// A projected history in the classic transactional model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassicHistory {
    ops: Vec<ClassicOp>,
}

impl ClassicHistory {
    /// The operations in execution order.
    pub fn ops(&self) -> &[ClassicOp] {
        &self.ops
    }

    /// Identifiers of the transactions appearing in the history.
    pub fn transactions(&self) -> Vec<u64> {
        let mut txns: Vec<u64> = self
            .ops
            .iter()
            .map(|o| o.txn)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        txns.sort_unstable();
        txns
    }

    /// Serializability graph in the classic model.
    pub fn serializability_graph(&self) -> ConflictGraph {
        let mut graph = ConflictGraph::new(self.transactions());
        for (a_idx, a) in self.ops.iter().enumerate() {
            for b in &self.ops[a_idx + 1..] {
                if a.conflicts_with(b) {
                    graph.add_edge(a.txn, b.txn);
                }
            }
        }
        graph
    }

    /// True if the history is conflict-serializable in the classic model.
    pub fn is_serializable(&self) -> bool {
        self.serializability_graph().is_acyclic()
    }
}

/// A directed conflict (serializability) graph over transactions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConflictGraph {
    nodes: Vec<u64>,
    edges: HashSet<(u64, u64)>,
}

impl ConflictGraph {
    /// Creates a graph with the given nodes and no edges.
    pub fn new(nodes: Vec<u64>) -> Self {
        Self {
            nodes,
            edges: HashSet::new(),
        }
    }

    /// Adds a directed edge (self-loops are ignored).
    pub fn add_edge(&mut self, from: u64, to: u64) {
        if from != to {
            self.edges.insert((from, to));
        }
    }

    /// The edge set.
    pub fn edges(&self) -> &HashSet<(u64, u64)> {
        &self.edges
    }

    /// True if the graph has no directed cycle (the serializability
    /// theorem's criterion).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let mut indegree: HashMap<u64, usize> = self.nodes.iter().map(|n| (*n, 0)).collect();
        let mut out: HashMap<u64, Vec<u64>> = HashMap::new();
        for (from, to) in &self.edges {
            *indegree.entry(*to).or_insert(0) += 1;
            indegree.entry(*from).or_insert(0);
            out.entry(*from).or_default().push(*to);
        }
        let mut queue: Vec<u64> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            if let Some(succs) = out.get(&n) {
                for s in succs {
                    let d = indegree.get_mut(s).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(*s);
                    }
                }
            }
        }
        visited == indegree.len()
    }

    /// A topological order of the transactions (an equivalent serial
    /// schedule) if the graph is acyclic.
    pub fn serial_order(&self) -> Option<Vec<u64>> {
        if !self.is_acyclic() {
            return None;
        }
        let mut indegree: HashMap<u64, usize> = self.nodes.iter().map(|n| (*n, 0)).collect();
        let mut out: HashMap<u64, Vec<u64>> = HashMap::new();
        for (from, to) in &self.edges {
            *indegree.entry(*to).or_insert(0) += 1;
            indegree.entry(*from).or_insert(0);
            out.entry(*from).or_default().push(*to);
        }
        let mut queue: Vec<u64> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        queue.sort_unstable();
        let mut order = Vec::with_capacity(indegree.len());
        while let Some(n) = queue.pop() {
            order.push(n);
            if let Some(succs) = out.get(&n) {
                for s in succs {
                    let d = indegree.get_mut(s).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(*s);
                    }
                }
            }
        }
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serial_history_is_serializable() {
        let h = History::from_ops(vec![
            Op::read(1, 0, 0, 10),
            Op::write(1, 0, 0, 10),
            Op::read(2, 0, 0, 10),
            Op::write(2, 0, 0, 10),
        ]);
        assert!(h.is_serializable());
        assert!(h.project().is_serializable());
        assert_eq!(h.serializability_graph().serial_order(), Some(vec![1, 2]));
    }

    #[test]
    fn classic_write_skew_like_cycle_is_rejected() {
        // T1 reads x then writes y; T2 reads y then writes x, interleaved so
        // that each read precedes the other's write: a cycle.
        let h = History::from_ops(vec![
            Op::read(1, 0, 0, 1),
            Op::read(2, 0, 0, 2),
            Op::write(1, 1, 0, 2),
            Op::write(2, 1, 0, 1),
        ]);
        assert!(!h.is_serializable());
        assert!(!h.project().is_serializable());
        assert_eq!(h.serializability_graph().serial_order(), None);
    }

    #[test]
    fn same_item_id_on_different_reactors_does_not_conflict() {
        // Data items of different reactors are disjoint by definition.
        let h = History::from_ops(vec![
            Op::write(1, 0, 0, 7),
            Op::write(2, 0, 1, 7),
            Op::write(1, 1, 1, 8),
            Op::write(2, 1, 0, 8),
        ]);
        assert!(h.is_serializable());
        // After projection the items are (0,7), (1,7), ... and still do not
        // collide.
        assert!(h.project().is_serializable());
    }

    #[test]
    fn cross_reactor_cycle_is_detected() {
        // T1 writes a on reactor 0 then reads b on reactor 1;
        // T2 writes b on reactor 1 (before T1 reads it) then writes a on
        // reactor 0 (after T1 wrote it): T1 -> T2 (on a) and T2 -> T1 (on b).
        let h = History::from_ops(vec![
            Op::write(1, 0, 0, 1),
            Op::write(2, 0, 1, 2),
            Op::read(1, 1, 1, 2),
            Op::write(2, 1, 0, 1),
        ]);
        assert!(!h.is_serializable());
        assert!(!h.project().is_serializable());
    }

    #[test]
    fn reads_alone_never_create_edges() {
        let h = History::from_ops(vec![
            Op::read(1, 0, 0, 1),
            Op::read(2, 0, 0, 1),
            Op::read(3, 0, 0, 1),
        ]);
        assert!(h.serializability_graph().edges().is_empty());
        assert!(h.is_serializable());
    }

    fn arbitrary_history() -> impl Strategy<Value = History> {
        // Small universes maximise the chance of conflicts and cycles.
        proptest::collection::vec(
            (0u64..4, 0u64..3, 0u64..2, 0u64..3, proptest::bool::ANY),
            0..24,
        )
        .prop_map(|raw| {
            History::from_ops(
                raw.into_iter()
                    .map(|(txn, sub, reactor, item, is_write)| Op {
                        txn,
                        sub,
                        reactor,
                        item,
                        is_write,
                    })
                    .collect(),
            )
        })
    }

    proptest! {
        /// Executable Theorem 2.7: a history is serializable in the reactor
        /// model iff its projection into the classic transactional model is
        /// serializable.
        #[test]
        fn prop_projection_preserves_serializability(h in arbitrary_history()) {
            prop_assert_eq!(h.is_serializable(), h.project().is_serializable());
        }

        /// The two serializability graphs have identical edge sets (the
        /// stronger statement underlying the theorem's proof).
        #[test]
        fn prop_projection_preserves_conflict_graph(h in arbitrary_history()) {
            let reactor_graph = h.serializability_graph();
            let classic_graph = h.project().serializability_graph();
            prop_assert_eq!(reactor_graph.edges(), classic_graph.edges());
        }

        /// A purely serial execution (transactions never interleave) is
        /// always serializable.
        #[test]
        fn prop_serial_executions_are_serializable(
            per_txn in proptest::collection::vec(
                proptest::collection::vec((0u64..2, 0u64..4, proptest::bool::ANY), 1..6),
                1..5,
            )
        ) {
            let mut ops = Vec::new();
            for (txn_idx, txn_ops) in per_txn.iter().enumerate() {
                for (sub, (reactor, item, is_write)) in txn_ops.iter().enumerate() {
                    ops.push(Op {
                        txn: txn_idx as u64,
                        sub: sub as u64,
                        reactor: *reactor,
                        item: *item,
                        is_write: *is_write,
                    });
                }
            }
            let h = History::from_ops(ops);
            prop_assert!(h.is_serializable());
        }
    }
}
