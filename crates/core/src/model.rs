//! Reactor types, procedure registries and reactor database specifications.
//!
//! A reactor database is instantiated by declaring (1) the reactor *types*
//! expected, (2) the schemas and functions (procedures) of each type, and
//! (3) the name mapping that addresses individual reactors (§2.2.1). Adding
//! a new reactor (e.g. a new payment provider) therefore never requires
//! rewriting application logic.

use std::collections::HashMap;
use std::sync::Arc;

use reactdb_common::{ReactorName, Result, TxnError, Value};
use reactdb_storage::RelationDef;

use crate::context::ReactorCtx;

/// A stored procedure registered on a reactor type. Procedures receive the
/// execution context of the reactor they were invoked on plus their
/// arguments, and return a single value (possibly [`Value::Null`]).
pub type Procedure = Arc<dyn Fn(&mut ReactorCtx<'_>, &[Value]) -> Result<Value> + Send + Sync>;

/// The set of procedures of one reactor type, addressed by name.
#[derive(Clone, Default)]
pub struct ProcedureRegistry {
    procedures: HashMap<String, Procedure>,
}

impl std::fmt::Debug for ProcedureRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.procedures.keys().collect();
        names.sort();
        f.debug_struct("ProcedureRegistry")
            .field("procedures", &names)
            .finish()
    }
}

impl ProcedureRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a procedure under `name`, replacing any previous
    /// registration with the same name.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut ReactorCtx<'_>, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.procedures.insert(name.into(), Arc::new(f));
    }

    /// Looks up a procedure by name.
    pub fn get(&self, name: &str) -> Option<Procedure> {
        self.procedures.get(name).cloned()
    }

    /// Registered procedure names (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.procedures.keys().cloned().collect();
        names.sort();
        names
    }
}

/// A reactor type: relation schemas encapsulated by reactors of this type
/// plus the procedures that can be invoked on them.
#[derive(Debug, Clone)]
pub struct ReactorType {
    /// Type name (e.g. `"Warehouse"`, `"Customer"`, `"Provider"`).
    pub name: String,
    /// Relations every reactor of this type encapsulates.
    pub relations: Vec<RelationDef>,
    /// Procedures invocable on reactors of this type.
    pub procedures: ProcedureRegistry,
}

impl ReactorType {
    /// Creates a reactor type with no relations or procedures.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            relations: Vec::new(),
            procedures: ProcedureRegistry::new(),
        }
    }

    /// Adds a relation definition.
    pub fn with_relation(mut self, def: RelationDef) -> Self {
        self.relations.push(def);
        self
    }

    /// Registers a procedure.
    pub fn with_procedure<F>(mut self, name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&mut ReactorCtx<'_>, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.procedures.register(name, f);
        self
    }

    /// Looks up a procedure, reporting a transaction error when missing.
    pub fn procedure(&self, name: &str) -> Result<Procedure> {
        self.procedures
            .get(name)
            .ok_or_else(|| TxnError::UnknownProcedure {
                reactor_type: self.name.clone(),
                procedure: name.to_owned(),
            })
    }
}

/// The declaration of a reactor database: reactor types plus the named
/// reactors (and their types) constituting the application.
#[derive(Debug, Clone, Default)]
pub struct ReactorDatabaseSpec {
    types: Vec<Arc<ReactorType>>,
    type_index: HashMap<String, usize>,
    reactors: Vec<(ReactorName, usize)>,
    reactor_index: HashMap<ReactorName, usize>,
}

impl ReactorDatabaseSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a reactor type.
    ///
    /// # Panics
    /// Panics on duplicate type names (specifications are static program
    /// data).
    pub fn add_type(&mut self, ty: ReactorType) -> &mut Self {
        assert!(
            !self.type_index.contains_key(&ty.name),
            "duplicate reactor type {}",
            ty.name
        );
        self.type_index.insert(ty.name.clone(), self.types.len());
        self.types.push(Arc::new(ty));
        self
    }

    /// Declares a named reactor of a previously declared type.
    ///
    /// # Panics
    /// Panics if the type is unknown or the name is already declared.
    pub fn add_reactor(&mut self, name: impl Into<ReactorName>, type_name: &str) -> &mut Self {
        let name = name.into();
        let ty = *self
            .type_index
            .get(type_name)
            .unwrap_or_else(|| panic!("unknown reactor type {type_name}"));
        assert!(
            !self.reactor_index.contains_key(&name),
            "duplicate reactor name {name}"
        );
        self.reactor_index.insert(name.clone(), self.reactors.len());
        self.reactors.push((name, ty));
        self
    }

    /// Number of declared reactors.
    pub fn reactor_count(&self) -> usize {
        self.reactors.len()
    }

    /// The declared reactor names in declaration (dense id) order.
    pub fn reactor_names(&self) -> Vec<ReactorName> {
        self.reactors.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Resolves a reactor name to its dense index.
    pub fn reactor_id(&self, name: &str) -> Result<usize> {
        self.reactor_index
            .get(name)
            .copied()
            .ok_or_else(|| TxnError::UnknownReactor(name.to_owned()))
    }

    /// Name of the reactor with the given dense index.
    pub fn reactor_name(&self, idx: usize) -> Option<&ReactorName> {
        self.reactors.get(idx).map(|(n, _)| n)
    }

    /// Type of the reactor with the given dense index.
    pub fn reactor_type(&self, idx: usize) -> Option<Arc<ReactorType>> {
        self.reactors
            .get(idx)
            .map(|(_, t)| Arc::clone(&self.types[*t]))
    }

    /// Type of the reactor with the given name.
    pub fn reactor_type_by_name(&self, name: &str) -> Result<Arc<ReactorType>> {
        let idx = self.reactor_id(name)?;
        Ok(self.reactor_type(idx).expect("index resolved from name"))
    }

    /// All declared types.
    pub fn types(&self) -> &[Arc<ReactorType>] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_storage::{ColumnType, Schema};

    fn spec() -> ReactorDatabaseSpec {
        let mut spec = ReactorDatabaseSpec::new();
        spec.add_type(
            ReactorType::new("Provider")
                .with_relation(RelationDef::new(
                    "orders",
                    Schema::of(
                        &[("wallet", ColumnType::Int), ("value", ColumnType::Float)],
                        &["wallet"],
                    ),
                ))
                .with_procedure("add_entry", |_ctx, _args| Ok(Value::Null)),
        );
        spec.add_type(
            ReactorType::new("Exchange")
                .with_procedure("auth_pay", |_ctx, _args| Ok(Value::Bool(true))),
        );
        spec.add_reactor("exchange", "Exchange");
        spec.add_reactor("MC_US", "Provider");
        spec.add_reactor("VISA_DK", "Provider");
        spec
    }

    #[test]
    fn name_to_id_mapping_is_dense_and_stable() {
        let s = spec();
        assert_eq!(s.reactor_count(), 3);
        assert_eq!(s.reactor_id("exchange").unwrap(), 0);
        assert_eq!(s.reactor_id("VISA_DK").unwrap(), 2);
        assert_eq!(s.reactor_name(1), Some(&"MC_US".to_owned()));
        assert!(matches!(
            s.reactor_id("nope"),
            Err(TxnError::UnknownReactor(_))
        ));
    }

    #[test]
    fn types_carry_relations_and_procedures() {
        let s = spec();
        let provider = s.reactor_type_by_name("MC_US").unwrap();
        assert_eq!(provider.name, "Provider");
        assert_eq!(provider.relations.len(), 1);
        assert!(provider.procedure("add_entry").is_ok());
        let err = provider
            .procedure("does_not_exist")
            .err()
            .expect("missing procedure");
        assert!(matches!(err, TxnError::UnknownProcedure { .. }));
        assert_eq!(provider.procedures.names(), vec!["add_entry".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "duplicate reactor name")]
    fn duplicate_reactor_name_panics() {
        let mut s = spec();
        s.add_reactor("MC_US", "Provider");
    }

    #[test]
    #[should_panic(expected = "unknown reactor type")]
    fn unknown_type_panics() {
        let mut s = spec();
        s.add_reactor("x", "Nope");
    }

    #[test]
    fn registry_debug_lists_names() {
        let s = spec();
        let dbg = format!(
            "{:?}",
            s.reactor_type_by_name("exchange").unwrap().procedures
        );
        assert!(dbg.contains("auth_pay"));
    }
}
