//! Futures (promises) returned by asynchronous procedure calls.
//!
//! "The only form of communication with a reactor is through asynchronous
//! function calls returning promises" (§2.2.1, citing Liskov & Shrira's
//! promises). A [`ReactorFuture`] is either resolved immediately (calls that
//! the runtime executed synchronously, e.g. self-calls or same-container
//! calls) or fulfilled later by the executor that runs the sub-transaction
//! on another container.
//!
//! Blocking on a pending future is mediated by an optional [`WaitHook`]: the
//! engine installs a hook that lets the blocked executor thread keep
//! draining its request queue (the cooperative multitasking of §3.2.3), and
//! the simulator installs one that advances virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use reactdb_common::{Result, TxnError, Value};

/// A runtime hook invoked while a thread waits on an unresolved future.
///
/// Implementations should perform a bounded amount of useful work (e.g.
/// process one queued request) and return; the future's wait loop re-checks
/// resolution between invocations.
pub trait WaitHook: Send + Sync {
    /// Performs one unit of cooperative work. Returns `true` if any work was
    /// done (the wait loop then re-polls immediately instead of parking).
    fn run_once(&self) -> bool;
}

/// Callback run exactly once when the future is fulfilled (or its writer is
/// dropped). The engine's session layer uses it to keep in-flight handle
/// counts and client-visible outcome statistics accurate without polling.
pub type FulfillHook = Box<dyn FnOnce(&Result<Value>) + Send>;

#[derive(Default)]
struct FutureState {
    slot: Mutex<Option<Result<Value>>>,
    cond: Condvar,
    /// Epoch the transaction committed in, threaded from the coordinator's
    /// commit TID; `0` means "not committed" (pending, aborted, or a
    /// transaction with nothing to make durable). Written before the result
    /// slot is filled, so any reader that observes the result also observes
    /// the epoch.
    commit_epoch: AtomicU64,
}

/// The promise for the result of a sub-transaction.
#[derive(Clone)]
pub struct ReactorFuture {
    state: Arc<FutureState>,
    hook: Option<Arc<dyn WaitHook>>,
}

impl std::fmt::Debug for ReactorFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorFuture")
            .field("resolved", &self.state.slot.lock().is_some())
            .finish()
    }
}

/// Write side of a pending future, handed to the executor that will run the
/// sub-transaction.
///
/// Dropping a writer without fulfilling it resolves the future with a
/// runtime error instead of stranding the reader: a request abandoned in a
/// closing executor queue is reported promptly rather than via the client
/// timeout.
pub struct FutureWriter {
    state: Arc<FutureState>,
    hook: Option<FulfillHook>,
}

impl std::fmt::Debug for FutureWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FutureWriter").finish()
    }
}

impl ReactorFuture {
    /// A future that is already resolved with `result` (synchronously
    /// executed calls).
    pub fn resolved(result: Result<Value>) -> Self {
        let state = FutureState {
            slot: Mutex::new(Some(result)),
            cond: Condvar::new(),
            commit_epoch: AtomicU64::new(0),
        };
        Self {
            state: Arc::new(state),
            hook: None,
        }
    }

    /// Creates an unresolved future and its writer.
    pub fn pending() -> (Self, FutureWriter) {
        let state = Arc::new(FutureState::default());
        (
            Self {
                state: Arc::clone(&state),
                hook: None,
            },
            FutureWriter { state, hook: None },
        )
    }

    /// Creates an unresolved future whose wait loop cooperates with the
    /// runtime through `hook`.
    pub fn pending_with_hook(hook: Arc<dyn WaitHook>) -> (Self, FutureWriter) {
        let state = Arc::new(FutureState::default());
        (
            Self {
                state: Arc::clone(&state),
                hook: Some(hook),
            },
            FutureWriter { state, hook: None },
        )
    }

    /// True if the future has been fulfilled.
    pub fn is_resolved(&self) -> bool {
        self.state.slot.lock().is_some()
    }

    /// Epoch the transaction committed in, when it committed and had state
    /// to make durable. `None` while pending, after an abort, and for
    /// transactions that touched no container (nothing to log). The client
    /// layer's `wait_durable` blocks until the WAL's durable epoch covers
    /// this value.
    pub fn commit_epoch(&self) -> Option<u64> {
        match self.state.commit_epoch.load(Ordering::Acquire) {
            0 => None,
            epoch => Some(epoch),
        }
    }

    /// Returns the result if already resolved, without blocking.
    pub fn try_get(&self) -> Option<Result<Value>> {
        self.state.slot.lock().clone()
    }

    /// Blocks until the future resolves and returns its result.
    ///
    /// While waiting, the runtime hook (if any) is given the opportunity to
    /// process other requests; this is what allows an executor thread to
    /// block on a remote sub-transaction without stalling its own request
    /// queue.
    pub fn get(&self) -> Result<Value> {
        loop {
            if let Some(result) = self.try_get() {
                return result;
            }
            if let Some(hook) = &self.hook {
                if hook.run_once() {
                    continue;
                }
            }
            let mut slot = self.state.slot.lock();
            if slot.is_some() {
                return slot.clone().expect("checked above");
            }
            // Park briefly; fulfilment notifies the condvar, and the timeout
            // keeps the cooperative hook responsive even under missed
            // wakeups.
            self.state
                .cond
                .wait_for(&mut slot, Duration::from_micros(50));
        }
    }

    /// Blocks like [`ReactorFuture::get`] but maps a still-unfulfilled
    /// future after `timeout` to a runtime error. Used by client drivers to
    /// avoid hanging forever if an executor died.
    pub fn get_timeout(&self, timeout: Duration) -> Result<Value> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(result) = self.try_get() {
                return result;
            }
            if std::time::Instant::now() >= deadline {
                return Err(TxnError::Runtime("future wait timed out".into()));
            }
            if let Some(hook) = &self.hook {
                if hook.run_once() {
                    continue;
                }
            }
            let mut slot = self.state.slot.lock();
            if slot.is_some() {
                return slot.clone().expect("checked above");
            }
            self.state
                .cond
                .wait_for(&mut slot, Duration::from_micros(100));
        }
    }
}

impl FutureWriter {
    /// Installs a callback to run exactly once when the future resolves —
    /// at fulfilment, or at writer drop if the request was abandoned. The
    /// engine's session layer uses this for in-flight accounting.
    pub fn on_fulfill(&mut self, hook: FulfillHook) {
        self.hook = Some(hook);
    }

    /// Fulfils the future. Later fulfilments are ignored (the first result
    /// wins), which keeps abort paths simple.
    pub fn fulfill(self, result: Result<Value>) {
        self.fulfill_at(result, None)
    }

    /// Fulfils the future and, when the transaction committed, records the
    /// epoch of its commit TID so durability-aware clients can wait for the
    /// epoch's group commit.
    pub fn fulfill_at(mut self, result: Result<Value>, commit_epoch: Option<u64>) {
        self.complete(result, commit_epoch);
    }

    fn complete(&mut self, result: Result<Value>, commit_epoch: Option<u64>) {
        if self.state.slot.lock().is_some() {
            return;
        }
        // Run the hook *before* publishing the result: any thread that
        // observes the resolution must also observe the hook's accounting
        // (in-flight counts, outcome counters). Only this writer can fill
        // the slot, so the early check above cannot race another filler.
        if let Some(hook) = self.hook.take() {
            hook(&result);
        }
        if let Some(epoch) = commit_epoch {
            self.state.commit_epoch.store(epoch, Ordering::Release);
        }
        let mut slot = self.state.slot.lock();
        *slot = Some(result);
        drop(slot);
        self.state.cond.notify_all();
    }
}

impl Drop for FutureWriter {
    fn drop(&mut self) {
        // A writer dropped without fulfilling means the request was
        // abandoned (e.g. it sat in an executor queue at shutdown). Resolve
        // the future with an error so readers are not stranded until their
        // timeout, and so the fulfil hook still fires exactly once. (A
        // fulfilled writer already filled the slot and took the hook.)
        if self.state.slot.lock().is_none() {
            self.complete(
                Err(TxnError::Runtime(
                    "transaction request dropped before completion".into(),
                )),
                None,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn resolved_future_returns_immediately() {
        let f = ReactorFuture::resolved(Ok(Value::Int(5)));
        assert!(f.is_resolved());
        assert_eq!(f.get().unwrap(), Value::Int(5));
        assert_eq!(f.try_get().unwrap().unwrap(), Value::Int(5));
    }

    #[test]
    fn pending_future_blocks_until_fulfilled() {
        let (f, w) = ReactorFuture::pending();
        assert!(!f.is_resolved());
        assert!(f.try_get().is_none());
        let handle = std::thread::spawn(move || f.get());
        std::thread::sleep(Duration::from_millis(5));
        w.fulfill(Ok(Value::Str("done".into())));
        assert_eq!(handle.join().unwrap().unwrap(), Value::Str("done".into()));
    }

    #[test]
    fn error_results_propagate() {
        let (f, w) = ReactorFuture::pending();
        w.fulfill(Err(TxnError::UserAbort("limit exceeded".into())));
        assert!(matches!(f.get(), Err(TxnError::UserAbort(_))));
    }

    #[test]
    fn wait_hook_is_driven_while_waiting() {
        struct Hook {
            calls: AtomicUsize,
            writer: Mutex<Option<FutureWriter>>,
        }
        impl WaitHook for Hook {
            fn run_once(&self) -> bool {
                let n = self.calls.fetch_add(1, Ordering::SeqCst);
                if n == 3 {
                    if let Some(w) = self.writer.lock().take() {
                        w.fulfill(Ok(Value::Int(99)));
                    }
                }
                true
            }
        }
        let hook = Arc::new(Hook {
            calls: AtomicUsize::new(0),
            writer: Mutex::new(None),
        });
        let (f, w) = ReactorFuture::pending_with_hook(hook.clone());
        *hook.writer.lock() = Some(w);
        assert_eq!(f.get().unwrap(), Value::Int(99));
        assert!(hook.calls.load(Ordering::SeqCst) >= 4);
    }

    #[test]
    fn get_timeout_reports_runtime_error() {
        let (f, _w) = ReactorFuture::pending();
        let err = f.get_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, TxnError::Runtime(_)));
    }

    #[test]
    fn commit_epoch_is_carried_with_the_result() {
        let (f, w) = ReactorFuture::pending();
        assert_eq!(f.commit_epoch(), None);
        w.fulfill_at(Ok(Value::Int(1)), Some(42));
        assert_eq!(f.get().unwrap(), Value::Int(1));
        assert_eq!(f.commit_epoch(), Some(42));

        let (f, w) = ReactorFuture::pending();
        w.fulfill(Err(TxnError::ValidationFailed));
        assert_eq!(f.commit_epoch(), None, "aborts carry no commit epoch");
    }

    #[test]
    fn dropped_writer_resolves_with_error_and_fires_hook() {
        let fired = Arc::new(AtomicUsize::new(0));
        let (f, mut w) = ReactorFuture::pending();
        let hook_fired = Arc::clone(&fired);
        w.on_fulfill(Box::new(move |result| {
            assert!(result.is_err());
            hook_fired.fetch_add(1, Ordering::SeqCst);
        }));
        drop(w);
        assert!(matches!(f.get(), Err(TxnError::Runtime(_))));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fulfill_hook_fires_exactly_once() {
        let fired = Arc::new(AtomicUsize::new(0));
        let (f, mut w) = ReactorFuture::pending();
        let hook_fired = Arc::clone(&fired);
        w.on_fulfill(Box::new(move |result| {
            assert!(result.is_ok());
            hook_fired.fetch_add(1, Ordering::SeqCst);
        }));
        w.fulfill(Ok(Value::Int(7)));
        assert_eq!(f.get().unwrap(), Value::Int(7));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn double_fulfill_keeps_first_result() {
        let (f, w) = ReactorFuture::pending();
        let f2 = f.clone();
        w.fulfill(Ok(Value::Int(1)));
        // A second writer cannot exist for the same future by construction;
        // simulate a late duplicate by fulfilling through a cloned state via
        // a new writer-like path: try_get must stay stable.
        assert_eq!(f2.get().unwrap(), Value::Int(1));
    }
}
