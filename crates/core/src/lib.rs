//! The reactor programming model (the paper's primary contribution).
//!
//! A *relational actor* — reactor — is an application-defined logical actor
//! that encapsulates state abstracted as relations (§2.1). Declarative
//! queries are supported only on a single reactor; state on other reactors is
//! reached exclusively through asynchronous function calls that return
//! futures, while the runtime guarantees serializability of the resulting
//! root transactions.
//!
//! This crate defines everything an application (or a benchmark workload)
//! needs in order to *write* reactor programs, independent of how they are
//! executed:
//!
//! * [`ReactorType`], [`ReactorDatabaseSpec`] — declaration of reactor types
//!   (relation schemas + procedures) and of the named reactors of an
//!   application (§2.2.1),
//! * [`Procedure`], [`ProcedureRegistry`] — registered stored procedures,
//! * [`ReactorFuture`] — the promise returned by an asynchronous call,
//! * [`ReactorCtx`] — the execution context handed to procedures: declarative
//!   operations on the current reactor's relations and `call` for
//!   cross-reactor invocations (§2.2.2),
//! * [`ActiveSet`] — the dynamic intra-transaction safety condition (§2.2.4),
//! * [`costmodel`] — the fork-join latency cost model of Figure 3 (§2.4),
//! * [`history`] — the conflict-serializability formalism of §2.3 and the
//!   projection of reactor-model histories into the classic transactional
//!   model (Theorem 2.7).
//!
//! The two runtimes that *execute* reactor programs live elsewhere:
//! `reactdb-engine` (real threads over real storage) and `reactdb-sim`
//! (deterministic virtual-time simulation of deployments).

pub mod context;
pub mod costmodel;
pub mod future;
pub mod history;
pub mod model;
pub mod safety;

pub use context::{CallBackend, ReactorCtx};
pub use future::{FulfillHook, FutureWriter, ReactorFuture};
pub use model::{Procedure, ProcedureRegistry, ReactorDatabaseSpec, ReactorType};
pub use safety::ActiveSet;
