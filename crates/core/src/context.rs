//! The execution context handed to reactor procedures.
//!
//! A [`ReactorCtx`] gives a procedure exactly the two capabilities the model
//! allows (§2.2.2):
//!
//! 1. declarative operations over the relations encapsulated by the reactor
//!    the procedure is running on — point reads, inserts, updates, deletes,
//!    scans, index lookups and aggregates, all of which are routed through
//!    the transaction's OCC participant so serializability is preserved;
//! 2. [`ReactorCtx::call`] — an asynchronous procedure invocation on another
//!    (or the same) reactor, returning a [`ReactorFuture`]. How the call is
//!    executed (inlined, same-executor synchronous, or dispatched to another
//!    container) is decided by the runtime behind the [`CallBackend`] trait.
//!
//! The context also records the futures of asynchronous children so the
//! runtime can enforce the completion rule: "a transaction or
//! sub-transaction completes only when all its nested sub-transactions
//! complete" (§2.2.3).

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use parking_lot::Mutex;
use reactdb_common::{Key, ReactorId, ReactorName, Result, TxnError, Value};
use reactdb_storage::{Partition, Schema, Tuple};
use reactdb_txn::OccTxn;

use crate::future::ReactorFuture;

/// The runtime interface used by [`ReactorCtx::call`] to dispatch
/// sub-transaction invocations. Implemented by the engine's executors and by
/// the simulator; unit tests provide mocks.
pub trait CallBackend {
    /// Invokes `proc(args)` on the reactor named `target` within the current
    /// root transaction, returning the future of its result.
    fn call(&self, target: &ReactorName, proc: &str, args: Vec<Value>) -> Result<ReactorFuture>;

    /// Name of the reactor the current procedure is executing on.
    fn current_reactor(&self) -> &str;
}

/// Execution context of one procedure invocation on one reactor.
pub struct ReactorCtx<'a> {
    reactor_name: ReactorName,
    reactor_id: ReactorId,
    partition: Arc<Partition>,
    occ: Arc<Mutex<OccTxn>>,
    backend: &'a dyn CallBackend,
    pending: Vec<ReactorFuture>,
    compute_units: u64,
}

impl<'a> ReactorCtx<'a> {
    /// Creates a context. Called by the runtimes, not by application code.
    pub fn new(
        reactor_name: ReactorName,
        reactor_id: ReactorId,
        partition: Arc<Partition>,
        occ: Arc<Mutex<OccTxn>>,
        backend: &'a dyn CallBackend,
    ) -> Self {
        Self {
            reactor_name,
            reactor_id,
            partition,
            occ,
            backend,
            pending: Vec::new(),
            compute_units: 0,
        }
    }

    /// Name of the reactor this procedure runs on (`my_name()` in the
    /// paper's pseudocode).
    pub fn reactor_name(&self) -> &str {
        &self.reactor_name
    }

    /// Dense id of the reactor this procedure runs on.
    pub fn reactor_id(&self) -> ReactorId {
        self.reactor_id
    }

    /// Schema of one of this reactor's relations (cloned; schemas are small).
    pub fn schema(&self, relation: &str) -> Result<Schema> {
        Ok(self
            .partition
            .table(self.reactor_id, relation)?
            .schema()
            .clone())
    }

    // ----------------------------------------------------------------
    // Declarative operations on the current reactor's relations.
    // ----------------------------------------------------------------

    /// Point read by primary key.
    pub fn get(&self, relation: &str, key: &Key) -> Result<Option<Tuple>> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().read(&table, key)
    }

    /// Point read by primary key; missing rows are an error.
    pub fn get_expected(&self, relation: &str, key: &Key) -> Result<Tuple> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().read_expected(&table, key)
    }

    /// Inserts a new row.
    pub fn insert(&self, relation: &str, row: Tuple) -> Result<()> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().insert(&table, row)
    }

    /// Replaces an existing row (full image).
    pub fn update(&self, relation: &str, row: Tuple) -> Result<()> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().update(&table, row)
    }

    /// Read-modify-write of an existing row.
    pub fn update_with<F>(&self, relation: &str, key: &Key, f: F) -> Result<Tuple>
    where
        F: FnOnce(&mut Tuple),
    {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().update_with(&table, key, f)
    }

    /// Deletes a row by primary key.
    pub fn delete(&self, relation: &str, key: &Key) -> Result<()> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().delete(&table, key)
    }

    /// Full scan of a relation in primary-key order. Like every scan on
    /// this context, it is phantom-safe: the traversed index-node versions
    /// join the transaction's node set and are re-validated at commit.
    pub fn scan(&self, relation: &str) -> Result<Vec<(Key, Tuple)>> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().scan(&table)
    }

    /// Range scan over the primary key.
    pub fn scan_range(
        &self,
        relation: &str,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> Result<Vec<(Key, Tuple)>> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ.lock().scan_range(&table, low, high)
    }

    /// Bounded scan with range sugar: accepts any [`RangeBounds`] over
    /// [`Key`], so call sites read like the query they express —
    /// `ctx.scan_bounded("orders", Key::Int(10)..Key::Int(20))`,
    /// `ctx.scan_bounded("orders", Key::Int(10)..)`, or an inclusive
    /// `low..=high`. This is the preferred scan shape: it touches (and
    /// validates) only the index nodes covering the bounds, where a full
    /// [`ReactorCtx::scan`] observes the whole key space.
    pub fn scan_bounded<R>(&self, relation: &str, range: R) -> Result<Vec<(Key, Tuple)>>
    where
        R: RangeBounds<Key>,
    {
        self.scan_range(relation, range.start_bound(), range.end_bound())
    }

    /// Rows matching a predicate (a scan with a filter applied).
    pub fn select_where<P>(&self, relation: &str, pred: P) -> Result<Vec<(Key, Tuple)>>
    where
        P: Fn(&Tuple) -> bool,
    {
        Ok(self
            .scan(relation)?
            .into_iter()
            .filter(|(_, t)| pred(t))
            .collect())
    }

    /// Rows within a primary-key range matching a predicate — the bounded
    /// counterpart of [`ReactorCtx::select_where`].
    pub fn select_bounded<R, P>(
        &self,
        relation: &str,
        range: R,
        pred: P,
    ) -> Result<Vec<(Key, Tuple)>>
    where
        R: RangeBounds<Key>,
        P: Fn(&Tuple) -> bool,
    {
        Ok(self
            .scan_bounded(relation, range)?
            .into_iter()
            .filter(|(_, t)| pred(t))
            .collect())
    }

    /// `SELECT SUM(column) FROM relation WHERE pred` over the current
    /// reactor's relation. Integers are widened to floats.
    pub fn sum_where<P>(&self, relation: &str, column: &str, pred: P) -> Result<f64>
    where
        P: Fn(&Tuple) -> bool,
    {
        self.sum_bounded(relation, .., column, pred)
    }

    /// `SELECT SUM(column)` over a primary-key range — the bounded
    /// counterpart of [`ReactorCtx::sum_where`]. Integers are widened to
    /// floats.
    pub fn sum_bounded<R, P>(&self, relation: &str, range: R, column: &str, pred: P) -> Result<f64>
    where
        R: RangeBounds<Key>,
        P: Fn(&Tuple) -> bool,
    {
        let table = self.partition.table(self.reactor_id, relation)?;
        let schema = table.schema().clone();
        let pos = schema.require(relation, column)?;
        let rows = self
            .occ
            .lock()
            .scan_range(&table, range.start_bound(), range.end_bound())?;
        Ok(rows
            .iter()
            .filter(|(_, t)| pred(t))
            .map(|(_, t)| match t.at(pos) {
                Value::Int(v) => *v as f64,
                Value::Float(v) => *v,
                _ => 0.0,
            })
            .sum())
    }

    /// Equality lookup on a secondary index of the relation.
    pub fn index_lookup(
        &self,
        relation: &str,
        index_id: usize,
        index_key: &Key,
    ) -> Result<Vec<(Key, Tuple)>> {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ
            .lock()
            .secondary_lookup(&table, index_id, index_key)
    }

    /// Range scan on a secondary index of the relation: visible rows whose
    /// index key falls within `range`, in index order.
    pub fn index_range<R>(
        &self,
        relation: &str,
        index_id: usize,
        range: R,
    ) -> Result<Vec<(Key, Tuple)>>
    where
        R: RangeBounds<Key>,
    {
        let table = self.partition.table(self.reactor_id, relation)?;
        self.occ
            .lock()
            .secondary_scan(&table, index_id, range.start_bound(), range.end_bound())
    }

    // ----------------------------------------------------------------
    // Cross-reactor communication.
    // ----------------------------------------------------------------

    /// Asynchronously invokes `proc(args)` on the reactor named `target`
    /// (the paper's `proc(args) on reactor target` syntax). The returned
    /// future may be awaited with [`ReactorFuture::get`]; if it is never
    /// awaited, the runtime still waits for the sub-transaction to complete
    /// before the enclosing (sub-)transaction completes.
    pub fn call(&mut self, target: &str, proc: &str, args: Vec<Value>) -> Result<ReactorFuture> {
        let future = self.backend.call(&target.to_owned(), proc, args)?;
        self.pending.push(future.clone());
        Ok(future)
    }

    /// Convenience wrapper performing a synchronous call: invoke and
    /// immediately wait for the result.
    pub fn call_sync(&mut self, target: &str, proc: &str, args: Vec<Value>) -> Result<Value> {
        self.call(target, proc, args)?.get()
    }

    /// Requests a user-defined abort of the enclosing root transaction.
    pub fn abort<T>(&self, reason: impl Into<String>) -> Result<T> {
        Err(TxnError::UserAbort(reason.into()))
    }

    /// Simulates CPU-bound application logic (e.g. the `sim_risk` risk
    /// calculation of Figure 1 or the stock-replenishment delay of §4.3.2)
    /// by spinning a deterministic arithmetic loop for `units` iterations.
    /// Returns a value derived from the loop; the result passes through an
    /// optimisation barrier so the spin survives release builds even when
    /// the caller discards it.
    pub fn busy_work(&mut self, units: u64) -> u64 {
        self.compute_units += units;
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15 ^ units;
        for i in 0..units {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            x ^= x >> 29;
        }
        std::hint::black_box(x)
    }

    /// Total busy-work units charged by this procedure invocation; used by
    /// the profiler to attribute processing cost.
    pub fn compute_units(&self) -> u64 {
        self.compute_units
    }

    /// Futures of the asynchronous children spawned by this invocation, in
    /// invocation order. The runtime drains this list to enforce the
    /// completion rule of §2.2.3.
    pub fn take_pending(&mut self) -> Vec<ReactorFuture> {
        std::mem::take(&mut self.pending)
    }

    /// The OCC participant this context writes through. Exposed for the
    /// runtimes and integration tests; application code has no use for it.
    pub fn participant(&self) -> Arc<Mutex<OccTxn>> {
        Arc::clone(&self.occ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::ContainerId;
    use reactdb_storage::{ColumnType, RelationDef, Schema};

    struct MockBackend {
        name: String,
    }

    impl CallBackend for MockBackend {
        fn call(
            &self,
            target: &ReactorName,
            proc: &str,
            _args: Vec<Value>,
        ) -> Result<ReactorFuture> {
            Ok(ReactorFuture::resolved(Ok(Value::Str(format!(
                "{proc}@{target}"
            )))))
        }
        fn current_reactor(&self) -> &str {
            &self.name
        }
    }

    fn setup() -> (Arc<Partition>, Arc<Mutex<OccTxn>>) {
        let partition = Arc::new(Partition::new());
        partition.create_reactor(
            ReactorId(0),
            &[RelationDef::new(
                "orders",
                Schema::of(
                    &[
                        ("wallet", ColumnType::Int),
                        ("value", ColumnType::Float),
                        ("settled", ColumnType::Bool),
                    ],
                    &["wallet"],
                ),
            )],
        );
        (partition, Arc::new(Mutex::new(OccTxn::new(ContainerId(0)))))
    }

    fn ctx<'a>(
        partition: &Arc<Partition>,
        occ: &Arc<Mutex<OccTxn>>,
        backend: &'a MockBackend,
    ) -> ReactorCtx<'a> {
        ReactorCtx::new(
            "exchange".into(),
            ReactorId(0),
            Arc::clone(partition),
            Arc::clone(occ),
            backend,
        )
    }

    #[test]
    fn crud_and_aggregate_through_context() {
        let (partition, occ) = setup();
        let backend = MockBackend {
            name: "exchange".into(),
        };
        let c = ctx(&partition, &occ, &backend);

        c.insert(
            "orders",
            Tuple::of([Value::Int(1), Value::Float(100.0), Value::Bool(false)]),
        )
        .unwrap();
        c.insert(
            "orders",
            Tuple::of([Value::Int(2), Value::Float(50.0), Value::Bool(true)]),
        )
        .unwrap();
        assert_eq!(
            c.get("orders", &Key::Int(1)).unwrap().unwrap().at(1),
            &Value::Float(100.0)
        );
        assert!(c.get("orders", &Key::Int(9)).unwrap().is_none());

        let unsettled = c
            .sum_where("orders", "value", |t| t.at(2) == &Value::Bool(false))
            .unwrap();
        assert_eq!(unsettled, 100.0);

        c.update_with("orders", &Key::Int(1), |t| {
            t.values_mut()[2] = Value::Bool(true)
        })
        .unwrap();
        let all = c.sum_where("orders", "value", |_| true).unwrap();
        assert_eq!(all, 150.0);

        c.delete("orders", &Key::Int(2)).unwrap();
        assert_eq!(c.scan("orders").unwrap().len(), 1);
        assert_eq!(
            c.select_where("orders", |t| t.at(2) == &Value::Bool(true))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn bounded_scan_sugar_covers_the_range_forms() {
        let (partition, occ) = setup();
        let backend = MockBackend {
            name: "exchange".into(),
        };
        let c = ctx(&partition, &occ, &backend);
        for w in 0..6i64 {
            c.insert(
                "orders",
                Tuple::of([
                    Value::Int(w),
                    Value::Float(w as f64),
                    Value::Bool(w % 2 == 0),
                ]),
            )
            .unwrap();
        }
        assert_eq!(
            c.scan_bounded("orders", Key::Int(1)..Key::Int(4))
                .unwrap()
                .len(),
            3
        );
        assert_eq!(c.scan_bounded("orders", Key::Int(4)..).unwrap().len(), 2);
        assert_eq!(c.scan_bounded("orders", ..=Key::Int(2)).unwrap().len(), 3);
        let evens = c
            .select_bounded("orders", Key::Int(0)..=Key::Int(3), |t| {
                t.at(2) == &Value::Bool(true)
            })
            .unwrap();
        assert_eq!(evens.len(), 2);
        let sum = c
            .sum_bounded("orders", Key::Int(2).., "value", |_| true)
            .unwrap();
        assert_eq!(sum, 2.0 + 3.0 + 4.0 + 5.0);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let (partition, occ) = setup();
        let backend = MockBackend {
            name: "exchange".into(),
        };
        let c = ctx(&partition, &occ, &backend);
        assert!(matches!(
            c.get("nope", &Key::Int(1)).unwrap_err(),
            TxnError::UnknownRelation(_)
        ));
        assert!(matches!(
            c.schema("nope").unwrap_err(),
            TxnError::UnknownRelation(_)
        ));
    }

    #[test]
    fn call_records_pending_futures() {
        let (partition, occ) = setup();
        let backend = MockBackend {
            name: "exchange".into(),
        };
        let mut c = ctx(&partition, &occ, &backend);
        let f = c
            .call("MC_US", "calc_risk", vec![Value::Float(1.0)])
            .unwrap();
        assert_eq!(f.get().unwrap(), Value::Str("calc_risk@MC_US".into()));
        let sync = c.call_sync("VISA_DK", "calc_risk", vec![]).unwrap();
        assert_eq!(sync, Value::Str("calc_risk@VISA_DK".into()));
        assert_eq!(c.take_pending().len(), 2);
        assert!(c.take_pending().is_empty());
    }

    #[test]
    fn abort_helper_produces_user_abort() {
        let (partition, occ) = setup();
        let backend = MockBackend {
            name: "exchange".into(),
        };
        let c = ctx(&partition, &occ, &backend);
        let res: Result<()> = c.abort("exposure exceeded");
        assert!(matches!(res.unwrap_err(), TxnError::UserAbort(msg) if msg == "exposure exceeded"));
    }

    #[test]
    fn busy_work_accumulates_units() {
        let (partition, occ) = setup();
        let backend = MockBackend {
            name: "exchange".into(),
        };
        let mut c = ctx(&partition, &occ, &backend);
        let a = c.busy_work(100);
        let b = c.busy_work(100);
        assert_eq!(a, b, "busy work is deterministic for equal inputs");
        assert_eq!(c.compute_units(), 200);
    }

    #[test]
    fn writes_are_visible_after_commit_via_coordinator() {
        use reactdb_txn::{Coordinator, EpochManager, TidGen};
        let (partition, occ) = setup();
        let backend = MockBackend {
            name: "exchange".into(),
        };
        {
            let c = ctx(&partition, &occ, &backend);
            c.insert(
                "orders",
                Tuple::of([Value::Int(7), Value::Float(9.0), Value::Bool(false)]),
            )
            .unwrap();
        }
        let epoch = EpochManager::new();
        let gen = TidGen::new();
        let mut participant = Arc::try_unwrap(occ)
            .expect("sole owner after ctx drop")
            .into_inner();
        Coordinator::commit(std::slice::from_mut(&mut participant), &epoch, &gen).unwrap();
        let table = partition.table(ReactorId(0), "orders").unwrap();
        assert_eq!(table.visible_len(), 1);
    }
}
