//! Intra-transaction safety: the dynamic *active set* condition of §2.2.4.
//!
//! Asynchronicity exposes intra-transaction parallelism, so race conditions
//! could arise if two sub-transactions of the same root transaction were
//! executed concurrently on the same reactor — this would also break the
//! illusion of a reactor as a single logical thread of control. The runtime
//! therefore keeps, per reactor, the set of sub-transactions currently
//! executing on it, and conservatively aborts a root transaction whenever a
//! second, different sub-transaction of the same root would become active on
//! a reactor that already runs one.

use std::collections::HashMap;

use parking_lot::Mutex;
use reactdb_common::{ReactorId, Result, SubTxnId, TxnError, TxnId};

/// A guard representing a registered active-set entry. Dropping the guard
/// does **not** deregister it (deregistration is explicit through
/// [`ActiveSet::exit`]) so that the runtime controls exactly when a
/// sub-transaction stops being active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveEntry {
    /// Reactor the sub-transaction is active on.
    pub reactor: ReactorId,
    /// Root transaction.
    pub txn: TxnId,
    /// Sub-transaction identifier within the root transaction.
    pub sub: SubTxnId,
}

/// Tracks, for every reactor, which sub-transaction of which root
/// transaction is currently active on it.
#[derive(Debug, Default)]
pub struct ActiveSet {
    // (reactor, root txn) -> (sub txn id, nesting depth)
    inner: Mutex<HashMap<(ReactorId, TxnId), (SubTxnId, usize)>>,
}

impl ActiveSet {
    /// Creates an empty active set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to register sub-transaction `sub` of root `txn` as active on
    /// `reactor`.
    ///
    /// * If no sub-transaction of `txn` is active on the reactor, the entry
    ///   is registered.
    /// * If the *same* sub-transaction is already active (a synchronous
    ///   self-call that the runtime inlines), the nesting depth is bumped —
    ///   this is explicitly allowed by the model.
    /// * If a *different* sub-transaction of the same root is active, the
    ///   call structure is dangerous and the root transaction must abort
    ///   ([`TxnError::DangerousStructure`]).
    pub fn enter(
        &self,
        reactor: ReactorId,
        reactor_name: &str,
        txn: TxnId,
        sub: SubTxnId,
    ) -> Result<ActiveEntry> {
        let mut inner = self.inner.lock();
        match inner.get_mut(&(reactor, txn)) {
            None => {
                inner.insert((reactor, txn), (sub, 1));
                Ok(ActiveEntry { reactor, txn, sub })
            }
            Some((active_sub, depth)) if *active_sub == sub => {
                *depth += 1;
                Ok(ActiveEntry { reactor, txn, sub })
            }
            Some(_) => Err(TxnError::DangerousStructure {
                reactor: reactor_name.to_owned(),
            }),
        }
    }

    /// Deregisters an entry previously returned by [`ActiveSet::enter`].
    /// Nested registrations of the same sub-transaction must be exited the
    /// same number of times.
    pub fn exit(&self, entry: ActiveEntry) {
        let mut inner = self.inner.lock();
        if let Some((active_sub, depth)) = inner.get_mut(&(entry.reactor, entry.txn)) {
            debug_assert_eq!(
                *active_sub, entry.sub,
                "exit of a non-active sub-transaction"
            );
            *depth -= 1;
            if *depth == 0 {
                inner.remove(&(entry.reactor, entry.txn));
            }
        }
    }

    /// Number of (reactor, transaction) pairs currently active. Used by
    /// tests and by the runtime's shutdown assertions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is active.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: ReactorId = ReactorId(1);

    #[test]
    fn first_entry_succeeds_and_exit_clears() {
        let set = ActiveSet::new();
        let e = set.enter(R, "r1", TxnId(1), SubTxnId(0)).unwrap();
        assert_eq!(set.len(), 1);
        set.exit(e);
        assert!(set.is_empty());
    }

    #[test]
    fn different_subtxn_of_same_root_is_dangerous() {
        let set = ActiveSet::new();
        let _e = set.enter(R, "r1", TxnId(1), SubTxnId(0)).unwrap();
        let err = set.enter(R, "r1", TxnId(1), SubTxnId(1)).unwrap_err();
        assert!(matches!(err, TxnError::DangerousStructure { reactor } if reactor == "r1"));
    }

    #[test]
    fn same_subtxn_reentry_is_allowed_and_nests() {
        let set = ActiveSet::new();
        let e1 = set.enter(R, "r1", TxnId(1), SubTxnId(0)).unwrap();
        let e2 = set.enter(R, "r1", TxnId(1), SubTxnId(0)).unwrap();
        set.exit(e2);
        assert_eq!(set.len(), 1);
        set.exit(e1);
        assert!(set.is_empty());
    }

    #[test]
    fn different_roots_do_not_conflict() {
        let set = ActiveSet::new();
        let _a = set.enter(R, "r1", TxnId(1), SubTxnId(0)).unwrap();
        let _b = set.enter(R, "r1", TxnId(2), SubTxnId(0)).unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn different_reactors_do_not_conflict() {
        let set = ActiveSet::new();
        let _a = set
            .enter(ReactorId(1), "r1", TxnId(1), SubTxnId(0))
            .unwrap();
        let _b = set
            .enter(ReactorId(2), "r2", TxnId(1), SubTxnId(1))
            .unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn reentry_after_exit_is_allowed() {
        let set = ActiveSet::new();
        let e = set.enter(R, "r1", TxnId(1), SubTxnId(0)).unwrap();
        set.exit(e);
        // A later sub-transaction of the same root may run on the reactor
        // once the first completed (sequential invocations are safe).
        set.enter(R, "r1", TxnId(1), SubTxnId(1)).unwrap();
    }
}
