//! The computational cost model for fork-join sub-transactions (Figure 3,
//! §2.4).
//!
//! A *fork-join* sub-transaction consists of (a) sequential logic,
//! potentially with synchronous calls to child sub-transactions, and
//! (b) parallel logic in which all asynchronous invocations happen at one
//! program point, are optionally overlapped with synchronous logic, and are
//! then collected. The latency of such a sub-transaction `ST` running on
//! reactor/executor `k` is modelled as
//!
//! ```text
//! L(ST) = Pseq(ST)
//!       + Σ_{c ∈ syncseq(ST)}  L(c)
//!       + Σ_{k' ∈ dest(syncseq(ST))} (Cs(k,k') + Cr(k',k))
//!       + max( max_{c ∈ async(ST)} ( L(c) + Cr(dest(c),k)
//!                                    + Σ_{k'' ∈ dest(prefix(async(ST),c))} Cs(k,k'') ),
//!              Povp(ST) + Σ_{c ∈ syncovp(ST)} L(c)
//!                       + Σ_{k' ∈ dest(syncovp(ST))} (Cs(k,k') + Cr(k',k)) )
//! ```
//!
//! where `Cs(k,k')` is the cost of sending an invocation from `k` to `k'`
//! and `Cr(k',k)` the cost of receiving its result. The same formula applies
//! recursively to children, and to root transactions modulo commit and
//! input-generation overheads (which are reported separately, as in
//! Figure 6).

use serde::{Deserialize, Serialize};

/// Calibrated cost-model parameters (all in microseconds). Communication
/// between co-located executors ("local") is distinguished from
/// communication between distinct executors ("remote"): the paper's §4.2.1
/// observes a marked asymmetry between `Cs` (atomic enqueue) and `Cr`
/// (thread switch on the receive path), which these defaults mirror.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of sending a sub-transaction invocation to a different executor.
    pub cs_remote_us: f64,
    /// Cost of receiving a result from a different executor.
    pub cr_remote_us: f64,
    /// Cost of sending an invocation handled by the same executor (inlined).
    pub cs_local_us: f64,
    /// Cost of receiving a result from the same executor (inlined).
    pub cr_local_us: f64,
    /// Commit protocol overhead added to root transactions (OCC validation
    /// plus 2PC when more than one container participates).
    pub commit_us: f64,
    /// Input-generation overhead added to root transactions by the
    /// measurement methodology (§4.1.2 includes it in reported latencies).
    pub input_gen_us: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Defaults in the ballpark of the paper's calibration on the Xeon
        // machine (§4.2.2): single-digit microseconds per communication,
        // with Cr more expensive than Cs.
        Self {
            cs_remote_us: 2.0,
            cr_remote_us: 6.0,
            cs_local_us: 0.0,
            cr_local_us: 0.0,
            commit_us: 8.0,
            input_gen_us: 2.0,
        }
    }
}

impl CostParams {
    /// Cs between two executors.
    pub fn cs(&self, from: usize, to: usize) -> f64 {
        if from == to {
            self.cs_local_us
        } else {
            self.cs_remote_us
        }
    }

    /// Cr between two executors (result flowing back `from -> to`).
    pub fn cr(&self, from: usize, to: usize) -> f64 {
        if from == to {
            self.cr_local_us
        } else {
            self.cr_remote_us
        }
    }
}

/// A fork-join (sub-)transaction for latency prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForkJoinTxn {
    /// Executor (equivalently, the reactor's transaction executor) this
    /// (sub-)transaction runs on.
    pub executor: usize,
    /// Sequential processing cost `Pseq` in microseconds.
    pub p_seq_us: f64,
    /// Processing overlapped with the asynchronous children, `Povp`.
    pub p_ovp_us: f64,
    /// Children invoked synchronously before the fork point (`syncseq`).
    pub sync_seq: Vec<ForkJoinTxn>,
    /// Children invoked asynchronously at the fork point, in invocation
    /// order (`async`).
    pub async_calls: Vec<ForkJoinTxn>,
    /// Children invoked synchronously while the asynchronous ones are in
    /// flight (`syncovp`).
    pub sync_ovp: Vec<ForkJoinTxn>,
}

/// Decomposition of a predicted root-transaction latency into the components
/// plotted in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Processing of the transaction logic and of synchronous
    /// sub-transactions (first two components of the formula).
    pub sync_execution_us: f64,
    /// Forward communication for synchronous sub-transactions.
    pub cs_us: f64,
    /// Backward communication for synchronous sub-transactions.
    pub cr_us: f64,
    /// The asynchronous/overlapped term (fourth component).
    pub async_execution_us: f64,
    /// Commit and input-generation overheads (root transactions only; not
    /// part of Figure 3 itself).
    pub commit_and_input_us: f64,
}

impl CostBreakdown {
    /// Total predicted latency.
    pub fn total_us(&self) -> f64 {
        self.sync_execution_us
            + self.cs_us
            + self.cr_us
            + self.async_execution_us
            + self.commit_and_input_us
    }
}

impl ForkJoinTxn {
    /// A leaf sub-transaction: pure sequential processing on `executor`.
    pub fn leaf(executor: usize, p_seq_us: f64) -> Self {
        Self {
            executor,
            p_seq_us,
            p_ovp_us: 0.0,
            sync_seq: Vec::new(),
            async_calls: Vec::new(),
            sync_ovp: Vec::new(),
        }
    }

    /// Adds a synchronously invoked child (before the fork point).
    pub fn with_sync(mut self, child: ForkJoinTxn) -> Self {
        self.sync_seq.push(child);
        self
    }

    /// Adds an asynchronously invoked child (at the fork point).
    pub fn with_async(mut self, child: ForkJoinTxn) -> Self {
        self.async_calls.push(child);
        self
    }

    /// Adds a child invoked synchronously but overlapped with the
    /// asynchronous ones.
    pub fn with_sync_ovp(mut self, child: ForkJoinTxn) -> Self {
        self.sync_ovp.push(child);
        self
    }

    /// Sets the overlapped processing cost `Povp`.
    pub fn with_overlapped_processing(mut self, p_ovp_us: f64) -> Self {
        self.p_ovp_us = p_ovp_us;
        self
    }

    /// Predicted latency of this (sub-)transaction per Figure 3, excluding
    /// commit and input-generation overheads.
    pub fn latency_us(&self, params: &CostParams) -> f64 {
        let b = self.breakdown_inner(params);
        b.sync_execution_us + b.cs_us + b.cr_us + b.async_execution_us
    }

    /// Predicted latency of a *root* transaction: Figure 3 plus the commit
    /// and input-generation overheads of the measurement methodology.
    pub fn root_latency_us(&self, params: &CostParams) -> f64 {
        self.latency_us(params) + params.commit_us + params.input_gen_us
    }

    /// Component breakdown of a root transaction (Figure 6).
    pub fn breakdown(&self, params: &CostParams) -> CostBreakdown {
        let mut b = self.breakdown_inner(params);
        b.commit_and_input_us = params.commit_us + params.input_gen_us;
        b
    }

    fn breakdown_inner(&self, params: &CostParams) -> CostBreakdown {
        let k = self.executor;

        // First two components: own sequential processing plus the latency
        // of synchronously invoked children.
        let mut sync_execution = self.p_seq_us;
        let mut cs = 0.0;
        let mut cr = 0.0;
        for child in &self.sync_seq {
            sync_execution += child.latency_us(params);
            cs += params.cs(k, child.executor);
            cr += params.cr(child.executor, k);
        }

        // Fourth component: the fork-join term.
        let mut async_branch: f64 = 0.0;
        let mut send_prefix = 0.0;
        for child in &self.async_calls {
            send_prefix += params.cs(k, child.executor);
            let candidate = child.latency_us(params) + params.cr(child.executor, k) + send_prefix;
            async_branch = async_branch.max(candidate);
        }

        let mut overlap_branch = self.p_ovp_us;
        for child in &self.sync_ovp {
            overlap_branch += child.latency_us(params)
                + params.cs(k, child.executor)
                + params.cr(child.executor, k);
        }

        CostBreakdown {
            sync_execution_us: sync_execution,
            cs_us: cs,
            cr_us: cr,
            async_execution_us: async_branch.max(overlap_branch),
            commit_and_input_us: 0.0,
        }
    }

    /// Total processing cost (sum of all `Pseq`/`Povp` in the tree),
    /// irrespective of scheduling — a lower bound on the work performed.
    pub fn total_processing_us(&self) -> f64 {
        self.p_seq_us
            + self.p_ovp_us
            + self
                .sync_seq
                .iter()
                .chain(self.async_calls.iter())
                .chain(self.sync_ovp.iter())
                .map(|c| c.total_processing_us())
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> CostParams {
        CostParams {
            cs_remote_us: 2.0,
            cr_remote_us: 6.0,
            cs_local_us: 0.0,
            cr_local_us: 0.0,
            commit_us: 10.0,
            input_gen_us: 2.0,
        }
    }

    #[test]
    fn leaf_latency_is_processing_only() {
        let txn = ForkJoinTxn::leaf(0, 7.5);
        assert_eq!(txn.latency_us(&params()), 7.5);
        assert_eq!(txn.root_latency_us(&params()), 19.5);
    }

    #[test]
    fn synchronous_remote_children_add_up_linearly() {
        // fully-sync multi-transfer shape: n remote children executed one
        // after another.
        let p = params();
        let mut txn = ForkJoinTxn::leaf(0, 1.0);
        for i in 1..=3 {
            txn = txn.with_sync(ForkJoinTxn::leaf(i, 4.0));
        }
        // 1 + 3*4 processing + 3*(2+6) communication
        assert_eq!(txn.latency_us(&p), 1.0 + 12.0 + 24.0);
    }

    #[test]
    fn local_synchronous_children_have_no_communication_cost() {
        let p = params();
        let txn = ForkJoinTxn::leaf(0, 1.0).with_sync(ForkJoinTxn::leaf(0, 4.0));
        assert_eq!(txn.latency_us(&p), 5.0);
    }

    #[test]
    fn asynchronous_children_overlap() {
        let p = params();
        // opt multi-transfer shape: n remote credits overlapped with one
        // local debit.
        let n = 4;
        let mut txn = ForkJoinTxn::leaf(0, 0.0).with_overlapped_processing(2.0);
        for i in 1..=n {
            txn = txn.with_async(ForkJoinTxn::leaf(i, 4.0));
        }
        // async branch: last child pays all n sends: L=4 + Cr=6 + n*Cs=8 => 18
        // overlap branch: 2.0
        assert_eq!(txn.latency_us(&p), 18.0);
        // The async formulation beats the equivalent fully-sync one.
        let mut sync_txn = ForkJoinTxn::leaf(0, 2.0);
        for i in 1..=n {
            sync_txn = sync_txn.with_sync(ForkJoinTxn::leaf(i, 4.0));
        }
        assert!(txn.latency_us(&p) < sync_txn.latency_us(&p));
    }

    #[test]
    fn overlap_branch_dominates_when_local_work_is_large() {
        let p = params();
        let txn = ForkJoinTxn::leaf(0, 0.0)
            .with_overlapped_processing(100.0)
            .with_async(ForkJoinTxn::leaf(1, 4.0));
        assert_eq!(txn.latency_us(&p), 100.0);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let p = params();
        let txn = ForkJoinTxn::leaf(0, 3.0)
            .with_sync(ForkJoinTxn::leaf(1, 2.0))
            .with_async(ForkJoinTxn::leaf(2, 5.0))
            .with_overlapped_processing(1.0);
        let b = txn.breakdown(&p);
        assert!((b.total_us() - (txn.latency_us(&p) + p.commit_us + p.input_gen_us)).abs() < 1e-9);
        assert_eq!(b.sync_execution_us, 5.0);
        assert_eq!(b.cs_us, 2.0);
        assert_eq!(b.cr_us, 6.0);
        assert_eq!(b.commit_and_input_us, 12.0);
    }

    #[test]
    fn nested_fork_join_recurses() {
        let p = params();
        let inner = ForkJoinTxn::leaf(1, 1.0).with_async(ForkJoinTxn::leaf(2, 3.0));
        let outer = ForkJoinTxn::leaf(0, 1.0).with_sync(inner.clone());
        // inner latency: 1 + max(3 + 6 + 2, 0) = 12
        assert_eq!(inner.latency_us(&p), 12.0);
        // outer: 1 + 12 + (2+6)
        assert_eq!(outer.latency_us(&p), 21.0);
        assert_eq!(outer.total_processing_us(), 5.0);
    }

    proptest! {
        /// More asynchronicity never increases predicted latency: moving a
        /// remote child from the synchronous-sequential set to the
        /// asynchronous set cannot make the transaction slower.
        #[test]
        fn prop_async_never_slower_than_sync(
            work in proptest::collection::vec(0.1f64..50.0, 1..8),
            p_seq in 0.0f64..20.0,
        ) {
            let p = params();
            let mut sync_txn = ForkJoinTxn::leaf(0, p_seq);
            let mut async_txn = ForkJoinTxn::leaf(0, p_seq);
            for (i, w) in work.iter().enumerate() {
                sync_txn = sync_txn.with_sync(ForkJoinTxn::leaf(i + 1, *w));
                async_txn = async_txn.with_async(ForkJoinTxn::leaf(i + 1, *w));
            }
            prop_assert!(async_txn.latency_us(&p) <= sync_txn.latency_us(&p) + 1e-9);
        }

        /// Latency is monotone in processing cost.
        #[test]
        fn prop_latency_monotone_in_processing(
            base in 0.0f64..50.0,
            extra in 0.0f64..50.0,
        ) {
            let p = params();
            let a = ForkJoinTxn::leaf(0, base).with_async(ForkJoinTxn::leaf(1, base));
            let b = ForkJoinTxn::leaf(0, base + extra).with_async(ForkJoinTxn::leaf(1, base + extra));
            prop_assert!(b.latency_us(&p) + 1e-9 >= a.latency_us(&p));
        }

        /// Latency is never below the critical-path lower bound (own
        /// sequential processing) and never above the fully serialized sum
        /// of all processing plus all possible communication.
        #[test]
        fn prop_latency_bounds(
            work in proptest::collection::vec(0.1f64..50.0, 0..6),
            p_seq in 0.0f64..20.0,
        ) {
            let p = params();
            let mut txn = ForkJoinTxn::leaf(0, p_seq);
            for (i, w) in work.iter().enumerate() {
                txn = txn.with_async(ForkJoinTxn::leaf(i + 1, *w));
            }
            let lat = txn.latency_us(&p);
            prop_assert!(lat >= p_seq - 1e-9);
            let upper = p_seq
                + work.iter().sum::<f64>()
                + work.len() as f64 * (p.cs_remote_us + p.cr_remote_us);
            prop_assert!(lat <= upper + 1e-9);
        }
    }
}
