//! Extended Smallbank benchmark (§4.1.3–4.1.4, Appendices B and H).
//!
//! Every customer is modelled as a reactor encapsulating three relations —
//! `account`, `savings` and `checking` — mirroring Figure 20. On top of the
//! standard Smallbank procedures, the benchmark adds the *multi-transfer*
//! transaction in the four program formulations whose latency behaviour
//! Figure 5 studies: `fully-sync`, `partially-async`, `fully-async` and
//! `opt`.

use rand::rngs::StdRng;
use rand::Rng;
use reactdb_common::{Key, Result, TxnError, Value};
use reactdb_core::costmodel::ForkJoinTxn;
use reactdb_core::{ReactorCtx, ReactorDatabaseSpec, ReactorType};
use reactdb_engine::ReactDB;
use reactdb_sim::{SimDeployment, SimTxn};
use reactdb_storage::{ColumnType, RelationDef, Schema, Tuple};

/// Name of the customer reactor with the given index.
pub fn customer_name(idx: usize) -> String {
    format!("cust-{idx}")
}

/// Default initial balance loaded into both accounts of every customer.
pub const INITIAL_BALANCE: f64 = 10_000.0;

/// Approximate processing cost of one `transact_saving` sub-transaction in
/// microseconds, used by the simulator profiles and the cost-model
/// predictions (calibrated in the spirit of §4.2.2: a couple of record
/// operations per call).
pub const TRANSACT_COST_US: f64 = 2.0;

/// Approximate fixed processing cost of the multi-transfer wrapper logic.
pub const WRAPPER_COST_US: f64 = 1.0;

/// The four multi-transfer program formulations of §4.1.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Formulation {
    /// Synchronous transfers, each a synchronous credit followed by a
    /// synchronous debit.
    FullySync,
    /// Synchronous transfers, each an asynchronous credit overlapped with a
    /// synchronous debit.
    PartiallyAsync,
    /// Asynchronous credits to all destinations, then synchronous debits.
    FullyAsync,
    /// Asynchronous credits and a single aggregated debit.
    Opt,
}

impl Formulation {
    /// All formulations in the order plotted in Figure 5.
    pub fn all() -> [Formulation; 4] {
        [
            Formulation::FullySync,
            Formulation::PartiallyAsync,
            Formulation::FullyAsync,
            Formulation::Opt,
        ]
    }

    /// The engine procedure implementing this formulation.
    pub fn procedure(&self) -> &'static str {
        match self {
            Formulation::FullySync => "multi_transfer_sync",
            Formulation::PartiallyAsync => "multi_transfer_partially_async",
            Formulation::FullyAsync => "multi_transfer_fully_async",
            Formulation::Opt => "multi_transfer_opt",
        }
    }

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Formulation::FullySync => "fully-sync",
            Formulation::PartiallyAsync => "partially-async",
            Formulation::FullyAsync => "fully-async",
            Formulation::Opt => "opt",
        }
    }
}

fn relations() -> Vec<RelationDef> {
    vec![
        RelationDef::new(
            "account",
            Schema::of(
                &[("name", ColumnType::Str), ("cust_id", ColumnType::Int)],
                &["name"],
            ),
        ),
        RelationDef::new(
            "savings",
            Schema::of(
                &[("cust_id", ColumnType::Int), ("balance", ColumnType::Float)],
                &["cust_id"],
            ),
        ),
        RelationDef::new(
            "checking",
            Schema::of(
                &[("cust_id", ColumnType::Int), ("balance", ColumnType::Float)],
                &["cust_id"],
            ),
        ),
    ]
}

/// Looks up the customer id through the `account` relation, preserving the
/// query footprint mandated by the benchmark specification (Appendix H): an
/// index traversal by account name, expressed as a bounded scan over the
/// single matching key rather than the seed's full-relation scan — the
/// node-set protocol then validates only the covering index node.
fn lookup_cust_id(ctx: &ReactorCtx<'_>) -> Result<i64> {
    let name = Key::Str(ctx.reactor_name().to_owned());
    let rows = ctx.scan_bounded("account", name.clone()..=name)?;
    let (_, row) = rows.first().ok_or_else(|| TxnError::NotFound {
        relation: "account".into(),
        key: ctx.reactor_name().to_owned(),
    })?;
    Ok(row.at(1).as_int())
}

fn adjust_balance(ctx: &ReactorCtx<'_>, relation: &str, amount: f64) -> Result<f64> {
    let cust_id = lookup_cust_id(ctx)?;
    let row = ctx.get_expected(relation, &Key::Int(cust_id))?;
    let balance = row.at(1).as_float();
    if balance + amount < 0.0 {
        return Err(TxnError::UserAbort(format!(
            "insufficient funds in {relation}"
        )));
    }
    ctx.update(
        relation,
        Tuple::of([Value::Int(cust_id), Value::Float(balance + amount)]),
    )?;
    Ok(balance + amount)
}

/// Builds the Smallbank reactor database specification with `customers`
/// customer reactors.
pub fn spec(customers: usize) -> ReactorDatabaseSpec {
    let customer = ReactorType::new("Customer")
        .with_relation(relations()[0].clone())
        .with_relation(relations()[1].clone())
        .with_relation(relations()[2].clone())
        // --- standard Smallbank procedures -------------------------------
        .with_procedure("balance", |ctx, _args| {
            let cust_id = lookup_cust_id(ctx)?;
            let savings = ctx
                .get_expected("savings", &Key::Int(cust_id))?
                .at(1)
                .as_float();
            let checking = ctx
                .get_expected("checking", &Key::Int(cust_id))?
                .at(1)
                .as_float();
            Ok(Value::Float(savings + checking))
        })
        .with_procedure("deposit_checking", |ctx, args| {
            let amount = args[0].as_float();
            if amount < 0.0 {
                return ctx.abort("negative deposit");
            }
            Ok(Value::Float(adjust_balance(ctx, "checking", amount)?))
        })
        .with_procedure("write_check", |ctx, args| {
            let amount = args[0].as_float();
            let cust_id = lookup_cust_id(ctx)?;
            let savings = ctx
                .get_expected("savings", &Key::Int(cust_id))?
                .at(1)
                .as_float();
            let checking = ctx
                .get_expected("checking", &Key::Int(cust_id))?
                .at(1)
                .as_float();
            let penalty = if savings + checking < amount {
                1.0
            } else {
                0.0
            };
            ctx.update(
                "checking",
                Tuple::of([
                    Value::Int(cust_id),
                    Value::Float(checking - amount - penalty),
                ]),
            )?;
            Ok(Value::Float(checking - amount - penalty))
        })
        .with_procedure("transact_saving", |ctx, args| {
            let amount = args[0].as_float();
            Ok(Value::Float(adjust_balance(ctx, "savings", amount)?))
        })
        .with_procedure("amalgamate", |ctx, args| {
            // Move all funds of this customer into the destination
            // customer's checking account.
            let dst = args[0].as_str().to_owned();
            let cust_id = lookup_cust_id(ctx)?;
            let savings = ctx
                .get_expected("savings", &Key::Int(cust_id))?
                .at(1)
                .as_float();
            let checking = ctx
                .get_expected("checking", &Key::Int(cust_id))?
                .at(1)
                .as_float();
            ctx.update(
                "savings",
                Tuple::of([Value::Int(cust_id), Value::Float(0.0)]),
            )?;
            ctx.update(
                "checking",
                Tuple::of([Value::Int(cust_id), Value::Float(0.0)]),
            )?;
            ctx.call(
                &dst,
                "deposit_checking",
                vec![Value::Float(savings + checking)],
            )?;
            Ok(Value::Float(savings + checking))
        })
        // --- transfer and the multi-transfer formulations ----------------
        .with_procedure("transfer", |ctx, args| {
            // args: [src, dst, amount, sequential credit?]
            let src = args[0].as_str().to_owned();
            let dst = args[1].as_str().to_owned();
            let amount = args[2].as_float();
            let sequential = args[3].as_bool();
            if amount <= 0.0 {
                return ctx.abort("non-positive transfer");
            }
            let credit = ctx.call(&dst, "transact_saving", vec![Value::Float(amount)])?;
            if sequential {
                credit.get()?;
            }
            ctx.call(&src, "transact_saving", vec![Value::Float(-amount)])?;
            Ok(Value::Null)
        })
        .with_procedure("multi_transfer_sync", |ctx, args| {
            multi_transfer_via_transfer(ctx, args, true)
        })
        .with_procedure("multi_transfer_partially_async", |ctx, args| {
            multi_transfer_via_transfer(ctx, args, false)
        })
        .with_procedure("multi_transfer_fully_async", |ctx, args| {
            // args: [src, amount, dst...]
            let (src, amount, dsts) = multi_transfer_args(args)?;
            if amount <= 0.0 {
                return ctx.abort("non-positive transfer");
            }
            for dst in &dsts {
                ctx.call(dst, "transact_saving", vec![Value::Float(amount)])?;
            }
            for _ in &dsts {
                let res = ctx.call(&src, "transact_saving", vec![Value::Float(-amount)])?;
                res.get()?;
            }
            Ok(Value::Null)
        })
        .with_procedure("multi_transfer_opt", |ctx, args| {
            let (src, amount, dsts) = multi_transfer_args(args)?;
            if amount <= 0.0 {
                return ctx.abort("non-positive transfer");
            }
            for dst in &dsts {
                ctx.call(dst, "transact_saving", vec![Value::Float(amount)])?;
            }
            let total = amount * dsts.len() as f64;
            ctx.call(&src, "transact_saving", vec![Value::Float(-total)])?
                .get()?;
            Ok(Value::Null)
        });

    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(customer);
    for i in 0..customers {
        spec.add_reactor(customer_name(i), "Customer");
    }
    spec
}

fn multi_transfer_args(args: &[Value]) -> Result<(String, f64, Vec<String>)> {
    if args.len() < 3 {
        return Err(TxnError::BadArguments(
            "multi_transfer needs src, amount, dst...".into(),
        ));
    }
    let src = args[0].as_str().to_owned();
    let amount = args[1].as_float();
    let dsts = args[2..].iter().map(|v| v.as_str().to_owned()).collect();
    Ok((src, amount, dsts))
}

fn multi_transfer_via_transfer(
    ctx: &mut ReactorCtx<'_>,
    args: &[Value],
    sequential_credit: bool,
) -> Result<Value> {
    let (src, amount, dsts) = multi_transfer_args(args)?;
    for dst in &dsts {
        let res = ctx.call(
            &src,
            "transfer",
            vec![
                Value::Str(src.clone()),
                Value::Str(dst.clone()),
                Value::Float(amount),
                Value::Bool(sequential_credit),
            ],
        )?;
        res.get()?;
    }
    Ok(Value::Null)
}

/// Loads the Smallbank tables: every customer reactor gets one row in each
/// of its three relations.
pub fn load(db: &ReactDB, customers: usize) -> Result<()> {
    for i in 0..customers {
        let name = customer_name(i);
        db.load_row(
            &name,
            "account",
            Tuple::of([Value::Str(name.clone()), Value::Int(i as i64)]),
        )?;
        db.load_row(
            &name,
            "savings",
            Tuple::of([Value::Int(i as i64), Value::Float(INITIAL_BALANCE)]),
        )?;
        db.load_row(
            &name,
            "checking",
            Tuple::of([Value::Int(i as i64), Value::Float(INITIAL_BALANCE)]),
        )?;
    }
    Ok(())
}

/// Builds the argument vector for a multi-transfer invocation on the source
/// customer reactor.
pub fn multi_transfer_invocation(src: usize, dsts: &[usize], amount: f64) -> Vec<Value> {
    let mut args = vec![Value::Str(customer_name(src)), Value::Float(amount)];
    args.extend(dsts.iter().map(|d| Value::Str(customer_name(*d))));
    args
}

// ---------------------------------------------------------------------------
// Simulator profiles and cost-model shapes.
// ---------------------------------------------------------------------------

/// Builds the simulator profile of a multi-transfer transaction under a
/// given formulation: the source customer reactor is `src`, the destination
/// reactors are `dsts` (reactor indices).
pub fn sim_profile(formulation: Formulation, src: usize, dsts: &[usize]) -> SimTxn {
    let n = dsts.len() as f64;
    match formulation {
        Formulation::FullySync => {
            // Each transfer: synchronous credit on the destination followed
            // by a synchronous (inlined) debit on the source.
            let mut root = SimTxn::leaf(src, WRAPPER_COST_US + n * TRANSACT_COST_US);
            for d in dsts {
                root = root.with_sync(SimTxn::leaf(*d, TRANSACT_COST_US));
            }
            root
        }
        Formulation::PartiallyAsync => {
            // Each transfer overlaps its credit with the local debit, but
            // transfers run one after another.
            let mut root = SimTxn::leaf(src, WRAPPER_COST_US);
            for d in dsts {
                let transfer = SimTxn::leaf(src, 0.0)
                    .with_async(SimTxn::leaf(*d, TRANSACT_COST_US))
                    .with_overlap(TRANSACT_COST_US);
                root = root.with_sync(transfer);
            }
            root
        }
        Formulation::FullyAsync => {
            let mut root = SimTxn::leaf(src, WRAPPER_COST_US).with_overlap(n * TRANSACT_COST_US);
            for d in dsts {
                root = root.with_async(SimTxn::leaf(*d, TRANSACT_COST_US));
            }
            root
        }
        Formulation::Opt => {
            let mut root = SimTxn::leaf(src, WRAPPER_COST_US).with_overlap(TRANSACT_COST_US);
            for d in dsts {
                root = root.with_async(SimTxn::leaf(*d, TRANSACT_COST_US));
            }
            root
        }
    }
}

/// Cost-model (Figure 3) shape of a multi-transfer under a deployment: the
/// prediction counterpart of [`sim_profile`], used for the `-pred` series of
/// Figure 6.
pub fn forkjoin_shape(
    formulation: Formulation,
    src: usize,
    dsts: &[usize],
    deployment: &SimDeployment,
) -> ForkJoinTxn {
    sim_to_forkjoin(&sim_profile(formulation, src, dsts), deployment)
}

/// Converts a simulator profile into the cost model's fork-join shape under
/// a deployment (reactors become the executors that own them; children
/// landing on the caller's executor are treated as inlined synchronous
/// calls, matching both the engine and the simulator).
pub fn sim_to_forkjoin(txn: &SimTxn, deployment: &SimDeployment) -> ForkJoinTxn {
    fn convert(
        txn: &SimTxn,
        deployment: &SimDeployment,
        caller_exec: Option<usize>,
    ) -> ForkJoinTxn {
        let exec = if deployment.inlines_subtxns() {
            caller_exec.unwrap_or_else(|| deployment.executor_of(txn.reactor))
        } else {
            deployment.executor_of(txn.reactor)
        };
        let mut out =
            ForkJoinTxn::leaf(exec, txn.p_seq_us).with_overlapped_processing(txn.p_ovp_us);
        for child in &txn.sync_children {
            out = out.with_sync(convert(child, deployment, Some(exec)));
        }
        for child in &txn.async_children {
            let converted = convert(child, deployment, Some(exec));
            if converted.executor == exec {
                // No parallelism is available on the same executor; the
                // runtime executes the call synchronously.
                out = out.with_sync(converted);
            } else {
                out = out.with_async(converted);
            }
        }
        out
    }
    convert(txn, deployment, None)
}

/// A [`reactdb_sim::SimWorkload`] issuing multi-transfer transactions with a
/// fixed formulation and size, choosing the source in the first container
/// and each destination on a distinct other container — the setup of §4.2.1.
#[derive(Debug, Clone)]
pub struct MultiTransferSimWorkload {
    /// Program formulation.
    pub formulation: Formulation,
    /// Number of destination accounts (the transaction size of Figure 5).
    pub txn_size: usize,
    /// Number of customer reactors per container range (1000 in §4.1.3).
    pub reactors_per_container: usize,
    /// Number of containers/executors in the deployment (7 in §4.2).
    pub containers: usize,
}

impl reactdb_sim::SimWorkload for MultiTransferSimWorkload {
    fn next_txn(&mut self, _worker: usize, rng: &mut StdRng) -> SimTxn {
        let src = rng.gen_range(0..self.reactors_per_container);
        let mut dsts = Vec::with_capacity(self.txn_size);
        for i in 0..self.txn_size {
            // Destination i lives on container (i+1) mod containers,
            // skipping the source container when possible.
            let container = 1 + (i % (self.containers.saturating_sub(1).max(1)));
            let offset = rng.gen_range(0..self.reactors_per_container);
            dsts.push(container * self.reactors_per_container + offset);
        }
        sim_profile(self.formulation, src, &dsts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::DeploymentConfig;
    use reactdb_sim::{SimCosts, SimStrategy, Simulator};

    fn small_db(customers: usize, config: DeploymentConfig) -> ReactDB {
        let db = ReactDB::boot(spec(customers), config);
        load(&db, customers).unwrap();
        db
    }

    #[test]
    fn balances_and_deposits() {
        let db = small_db(4, DeploymentConfig::shared_everything_with_affinity(2));
        let client = db.client();
        let b = client.invoke(&customer_name(0), "balance", vec![]).unwrap();
        assert_eq!(b, Value::Float(2.0 * INITIAL_BALANCE));
        // Pipelined deposits through the session API: all in flight, then
        // each handle awaited.
        let handles = client
            .submit_batch((0..4).map(|i| {
                reactdb_engine::Call::new(
                    customer_name(i),
                    "deposit_checking",
                    vec![Value::Float(100.0)],
                )
            }))
            .unwrap();
        for handle in &handles {
            handle.wait().unwrap();
        }
        assert_eq!(client.stats().committed, 5);
        let b = client.invoke(&customer_name(0), "balance", vec![]).unwrap();
        assert_eq!(b, Value::Float(2.0 * INITIAL_BALANCE + 100.0));
    }

    #[test]
    fn write_check_applies_overdraft_penalty() {
        let db = small_db(2, DeploymentConfig::shared_everything_with_affinity(1));
        // Withdraw more than the combined balance: one extra unit of penalty.
        let v = db
            .invoke(
                &customer_name(1),
                "write_check",
                vec![Value::Float(2.5 * INITIAL_BALANCE)],
            )
            .unwrap();
        assert_eq!(
            v,
            Value::Float(INITIAL_BALANCE - 2.5 * INITIAL_BALANCE - 1.0)
        );
    }

    #[test]
    fn transact_saving_rejects_overdraft() {
        let db = small_db(2, DeploymentConfig::shared_nothing(2));
        let err = db
            .invoke(
                &customer_name(0),
                "transact_saving",
                vec![Value::Float(-2.0 * INITIAL_BALANCE)],
            )
            .unwrap_err();
        assert!(err.is_user_abort());
    }

    #[test]
    fn all_multi_transfer_formulations_preserve_total_balance() {
        for formulation in Formulation::all() {
            for config in [
                DeploymentConfig::shared_everything_with_affinity(2),
                DeploymentConfig::shared_nothing(4),
            ] {
                let db = small_db(8, config);
                let dsts = [1, 2, 3];
                db.invoke(
                    &customer_name(0),
                    formulation.procedure(),
                    multi_transfer_invocation(0, &dsts, 50.0),
                )
                .unwrap();
                // Source lost 150, each destination gained 50.
                let src_savings = db
                    .table(&customer_name(0), "savings")
                    .unwrap()
                    .get(&Key::Int(0))
                    .unwrap();
                assert_eq!(
                    src_savings.read_unguarded().at(1),
                    &Value::Float(INITIAL_BALANCE - 150.0),
                    "formulation {formulation:?}"
                );
                for d in dsts {
                    let row = db
                        .table(&customer_name(d), "savings")
                        .unwrap()
                        .get(&Key::Int(d as i64))
                        .unwrap();
                    assert_eq!(
                        row.read_unguarded().at(1),
                        &Value::Float(INITIAL_BALANCE + 50.0)
                    );
                }
            }
        }
    }

    #[test]
    fn amalgamate_moves_all_funds() {
        let db = small_db(4, DeploymentConfig::shared_nothing(2));
        db.invoke(
            &customer_name(2),
            "amalgamate",
            vec![Value::Str(customer_name(3))],
        )
        .unwrap();
        assert_eq!(
            db.invoke(&customer_name(2), "balance", vec![]).unwrap(),
            Value::Float(0.0)
        );
        assert_eq!(
            db.invoke(&customer_name(3), "balance", vec![]).unwrap(),
            Value::Float(4.0 * INITIAL_BALANCE)
        );
    }

    #[test]
    fn negative_multi_transfer_aborts() {
        let db = small_db(3, DeploymentConfig::shared_nothing(3));
        let err = db
            .invoke(
                &customer_name(0),
                "multi_transfer_opt",
                multi_transfer_invocation(0, &[1, 2], -5.0),
            )
            .unwrap_err();
        assert!(err.is_user_abort());
    }

    #[test]
    fn sim_profiles_reflect_formulation_structure() {
        let dsts = [10, 20, 30];
        let sync = sim_profile(Formulation::FullySync, 0, &dsts);
        assert_eq!(sync.sync_children.len(), 3);
        assert_eq!(sync.async_children.len(), 0);

        let opt = sim_profile(Formulation::Opt, 0, &dsts);
        assert_eq!(opt.async_children.len(), 3);
        assert_eq!(opt.p_ovp_us, TRANSACT_COST_US);

        let fully_async = sim_profile(Formulation::FullyAsync, 0, &dsts);
        assert_eq!(fully_async.p_ovp_us, 3.0 * TRANSACT_COST_US);

        // Total work is identical for fully-sync and fully-async.
        assert!((sync.total_processing_us() - fully_async.total_processing_us()).abs() < 1e-9);
    }

    #[test]
    fn simulated_latency_ordering_matches_figure_5() {
        // fully-sync slowest, opt fastest, the others in between, for a
        // transaction spanning 7 remote containers.
        let deployment = SimDeployment::striped(SimStrategy::SharedNothing, 8, 8);
        let costs = SimCosts::default();
        let dsts: Vec<usize> = (1..=7).collect();
        let latency = |f: Formulation| {
            let sim = Simulator::new(deployment.clone(), costs);
            let d = dsts.clone();
            let mut wl = move |_: usize, _: &mut StdRng| sim_profile(f, 0, &d);
            sim.run(&mut wl, 1, 50, 7).avg_latency_us()
        };
        let fully_sync = latency(Formulation::FullySync);
        let partially = latency(Formulation::PartiallyAsync);
        let fully_async = latency(Formulation::FullyAsync);
        let opt = latency(Formulation::Opt);
        assert!(fully_sync > partially);
        assert!(partially > fully_async);
        assert!(fully_async >= opt);
    }

    #[test]
    fn cost_model_prediction_tracks_simulation_for_single_transactions() {
        let deployment = SimDeployment::striped(SimStrategy::SharedNothing, 8, 8);
        let dsts: Vec<usize> = (1..=5).collect();
        let costs = SimCosts::default();
        let params = reactdb_core::costmodel::CostParams {
            cs_remote_us: costs.cs_us,
            cr_remote_us: costs.cr_us,
            cs_local_us: 0.0,
            cr_local_us: 0.0,
            commit_us: costs.commit_us + costs.dispatch_us + 5.0 * costs.commit_remote_us,
            input_gen_us: costs.input_gen_us,
        };
        for f in Formulation::all() {
            let predicted = forkjoin_shape(f, 0, &dsts, &deployment).root_latency_us(&params);
            let sim = Simulator::new(deployment.clone(), costs);
            let d = dsts.clone();
            let mut wl = move |_: usize, _: &mut StdRng| sim_profile(f, 0, &d);
            let observed = sim.run(&mut wl, 1, 20, 3).avg_latency_us();
            let diff = (predicted - observed).abs() / observed;
            assert!(
                diff < 0.25,
                "{f:?}: predicted {predicted:.1} vs simulated {observed:.1}"
            );
        }
    }
}
