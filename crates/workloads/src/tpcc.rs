//! TPC-C in the reactor model (§4.1.3, §4.3, Appendices D–F).
//!
//! Each warehouse is a reactor encapsulating the warehouse's slice of every
//! TPC-C relation (the `item` catalogue is replicated into every warehouse
//! reactor, as usual for partitioned TPC-C implementations). The five
//! standard transactions are implemented as procedures on the warehouse
//! reactor; cross-warehouse work — remote stock updates in `new_order`,
//! remote customers in `payment` — is expressed as asynchronous
//! sub-transaction calls, which is what the shared-nothing-async deployment
//! exploits.
//!
//! The module also provides the *new-order-delay* variant of §4.3.2 (stock
//! replenishment modelled as a few hundred microseconds of computation per
//! remote item), the cross-reactor probability knob of Appendix E, the
//! standard-mix input generator, and the simulator profiles used by the
//! figure harness.

use rand::rngs::StdRng;
use rand::Rng;
use reactdb_common::zipf::NonUniform;
use reactdb_common::{Key, Result, TxnError, Value};
use reactdb_core::{ReactorCtx, ReactorDatabaseSpec, ReactorType};
use reactdb_engine::ReactDB;
use reactdb_sim::SimTxn;
use reactdb_storage::{ColumnType, RelationDef, Schema, Tuple};

/// Name of the warehouse reactor with 0-based index `idx`.
pub fn warehouse_name(idx: usize) -> String {
    format!("warehouse-{idx}")
}

/// Scale constants: reduced table cardinalities are allowed for functional
/// tests; the benchmark harness uses the standard values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpccScale {
    /// Number of warehouses (reactors); the TPC-C scale factor.
    pub warehouses: usize,
    /// Districts per warehouse (10 in the specification).
    pub districts: usize,
    /// Customers per district (3000 in the specification).
    pub customers_per_district: usize,
    /// Items in the catalogue (100 000 in the specification).
    pub items: usize,
}

impl TpccScale {
    /// The standard TPC-C cardinalities at the given scale factor.
    pub fn standard(warehouses: usize) -> Self {
        Self {
            warehouses,
            districts: 10,
            customers_per_district: 3000,
            items: 100_000,
        }
    }

    /// A small scale for functional tests.
    pub fn tiny(warehouses: usize) -> Self {
        Self {
            warehouses,
            districts: 2,
            customers_per_district: 5,
            items: 50,
        }
    }
}

fn relations() -> Vec<RelationDef> {
    vec![
        RelationDef::new(
            "warehouse",
            Schema::of(
                &[
                    ("w_id", ColumnType::Int),
                    ("w_tax", ColumnType::Float),
                    ("w_ytd", ColumnType::Float),
                ],
                &["w_id"],
            ),
        ),
        RelationDef::new(
            "district",
            Schema::of(
                &[
                    ("d_id", ColumnType::Int),
                    ("d_tax", ColumnType::Float),
                    ("d_ytd", ColumnType::Float),
                    ("d_next_o_id", ColumnType::Int),
                ],
                &["d_id"],
            ),
        ),
        RelationDef::new(
            "customer",
            Schema::of(
                &[
                    ("d_id", ColumnType::Int),
                    ("c_id", ColumnType::Int),
                    ("c_last", ColumnType::Str),
                    ("c_credit", ColumnType::Str),
                    ("c_balance", ColumnType::Float),
                    ("c_ytd_payment", ColumnType::Float),
                    ("c_payment_cnt", ColumnType::Int),
                    ("c_delivery_cnt", ColumnType::Int),
                ],
                &["d_id", "c_id"],
            ),
        )
        .with_index(&["d_id", "c_last"]),
        RelationDef::new(
            "item",
            Schema::of(
                &[
                    ("i_id", ColumnType::Int),
                    ("i_name", ColumnType::Str),
                    ("i_price", ColumnType::Float),
                ],
                &["i_id"],
            ),
        ),
        RelationDef::new(
            "stock",
            Schema::of(
                &[
                    ("i_id", ColumnType::Int),
                    ("s_quantity", ColumnType::Int),
                    ("s_ytd", ColumnType::Int),
                    ("s_order_cnt", ColumnType::Int),
                    ("s_remote_cnt", ColumnType::Int),
                ],
                &["i_id"],
            ),
        ),
        RelationDef::new(
            "orders",
            Schema::of(
                &[
                    ("d_id", ColumnType::Int),
                    ("o_id", ColumnType::Int),
                    ("o_c_id", ColumnType::Int),
                    ("o_carrier_id", ColumnType::Int),
                    ("o_ol_cnt", ColumnType::Int),
                ],
                &["d_id", "o_id"],
            ),
        )
        .with_index(&["d_id", "o_c_id"]),
        RelationDef::new(
            "new_order",
            Schema::of(
                &[("d_id", ColumnType::Int), ("o_id", ColumnType::Int)],
                &["d_id", "o_id"],
            ),
        ),
        RelationDef::new(
            "order_line",
            Schema::of(
                &[
                    ("d_id", ColumnType::Int),
                    ("o_id", ColumnType::Int),
                    ("ol_number", ColumnType::Int),
                    ("ol_i_id", ColumnType::Int),
                    ("ol_supply_w", ColumnType::Str),
                    ("ol_quantity", ColumnType::Int),
                    ("ol_amount", ColumnType::Float),
                    ("ol_delivered", ColumnType::Bool),
                ],
                &["d_id", "o_id", "ol_number"],
            ),
        ),
        RelationDef::new(
            "history",
            Schema::of(
                &[
                    ("d_id", ColumnType::Int),
                    ("c_id", ColumnType::Int),
                    ("h_seq", ColumnType::Int),
                    ("h_amount", ColumnType::Float),
                ],
                &["d_id", "c_id", "h_seq"],
            ),
        ),
    ]
}

/// Performs the stock update of one order line. `args`:
/// `[i_id, quantity, remote(bool), delay_units]`.
fn stock_update(ctx: &mut ReactorCtx<'_>, args: &[Value]) -> Result<Value> {
    let i_id = args[0].as_int();
    let quantity = args[1].as_int();
    let remote = args[2].as_bool();
    let delay_units = args[3].as_int() as u64;
    if delay_units > 0 {
        // Stock replenishment calculation of §4.3.2, modelled as CPU work.
        ctx.busy_work(delay_units);
    }
    let row = ctx.update_with("stock", &Key::Int(i_id), |t| {
        let s_quantity = t.at(1).as_int();
        let new_quantity = if s_quantity - quantity >= 10 {
            s_quantity - quantity
        } else {
            s_quantity - quantity + 91
        };
        t.values_mut()[1] = Value::Int(new_quantity);
        t.values_mut()[2] = Value::Int(t.at(2).as_int() + quantity);
        t.values_mut()[3] = Value::Int(t.at(3).as_int() + 1);
        if remote {
            t.values_mut()[4] = Value::Int(t.at(4).as_int() + 1);
        }
    })?;
    Ok(Value::Int(row.at(1).as_int()))
}

/// The new-order transaction. `args`:
/// `[d_id, c_id, delay_units, (i_id, supply_warehouse_name, qty)*]`.
fn new_order(ctx: &mut ReactorCtx<'_>, args: &[Value]) -> Result<Value> {
    let d_id = args[0].as_int();
    let c_id = args[1].as_int();
    let delay_units = args[2].as_int();
    let lines = &args[3..];
    if lines.is_empty() || !lines.len().is_multiple_of(3) {
        return Err(TxnError::BadArguments(
            "new_order needs (item, warehouse, qty) triples".into(),
        ));
    }
    let ol_cnt = lines.len() / 3;

    // Warehouse and district reads; allocate the order id.
    let _warehouse = ctx.get_expected("warehouse", &Key::Int(0))?;
    let district = ctx.update_with("district", &Key::Int(d_id), |t| {
        t.values_mut()[3] = Value::Int(t.at(3).as_int() + 1);
    })?;
    let o_id = district.at(3).as_int() - 1;
    let _customer = ctx.get_expected(
        "customer",
        &Key::composite([Key::Int(d_id), Key::Int(c_id)]),
    )?;

    ctx.insert(
        "orders",
        Tuple::of([
            Value::Int(d_id),
            Value::Int(o_id),
            Value::Int(c_id),
            Value::Int(-1),
            Value::Int(ol_cnt as i64),
        ]),
    )?;
    ctx.insert("new_order", Tuple::of([Value::Int(d_id), Value::Int(o_id)]))?;

    let my_name = ctx.reactor_name().to_owned();
    let mut total_amount = 0.0;
    for (ol_number, line) in lines.chunks(3).enumerate() {
        let i_id = line[0].as_int();
        let supply = line[1].as_str().to_owned();
        let qty = line[2].as_int();
        let item = ctx.get_expected("item", &Key::Int(i_id))?;
        let amount = item.at(2).as_float() * qty as f64;
        total_amount += amount;

        // Stock maintenance: local items are updated here (an inlined
        // self-call); remote items are asynchronous sub-transactions on the
        // supplying warehouse reactor, overlapped with the rest of the
        // order-line processing.
        let remote = supply != my_name;
        ctx.call(
            &supply,
            "stock_update",
            vec![
                Value::Int(i_id),
                Value::Int(qty),
                Value::Bool(remote),
                Value::Int(if remote { delay_units } else { 0 }),
            ],
        )?;

        ctx.insert(
            "order_line",
            Tuple::of([
                Value::Int(d_id),
                Value::Int(o_id),
                Value::Int(ol_number as i64),
                Value::Int(i_id),
                Value::Str(supply),
                Value::Int(qty),
                Value::Float(amount),
                Value::Bool(false),
            ]),
        )?;
    }
    let _ = total_amount;
    Ok(Value::Int(o_id))
}

/// The payment transaction. `args`:
/// `[d_id, c_id, amount, customer_warehouse_name, c_d_id]`.
fn payment(ctx: &mut ReactorCtx<'_>, args: &[Value]) -> Result<Value> {
    let d_id = args[0].as_int();
    let c_id = args[1].as_int();
    let amount = args[2].as_float();
    let customer_warehouse = args[3].as_str().to_owned();
    let c_d_id = args[4].as_int();

    ctx.update_with("warehouse", &Key::Int(0), |t| {
        t.values_mut()[2] = Value::Float(t.at(2).as_float() + amount);
    })?;
    ctx.update_with("district", &Key::Int(d_id), |t| {
        t.values_mut()[2] = Value::Float(t.at(2).as_float() + amount);
    })?;

    if customer_warehouse == ctx.reactor_name() {
        apply_customer_payment(ctx, c_d_id, c_id, amount)?;
    } else {
        // Remote customer (15% in the standard mix): asynchronous
        // sub-transaction on the customer's home warehouse.
        ctx.call(
            &customer_warehouse,
            "payment_customer",
            vec![Value::Int(c_d_id), Value::Int(c_id), Value::Float(amount)],
        )?;
    }

    // History record, keyed by the customer's payment sequence within this
    // warehouse/district.
    let seq = ctx
        .scan_range(
            "history",
            std::ops::Bound::Included(&Key::composite([
                Key::Int(d_id),
                Key::Int(c_id),
                Key::Int(0),
            ])),
            std::ops::Bound::Included(&Key::composite([
                Key::Int(d_id),
                Key::Int(c_id),
                Key::Int(i64::MAX),
            ])),
        )?
        .len() as i64;
    ctx.insert(
        "history",
        Tuple::of([
            Value::Int(d_id),
            Value::Int(c_id),
            Value::Int(seq),
            Value::Float(amount),
        ]),
    )?;
    Ok(Value::Null)
}

fn apply_customer_payment(ctx: &ReactorCtx<'_>, d_id: i64, c_id: i64, amount: f64) -> Result<()> {
    ctx.update_with(
        "customer",
        &Key::composite([Key::Int(d_id), Key::Int(c_id)]),
        |t| {
            t.values_mut()[4] = Value::Float(t.at(4).as_float() - amount);
            t.values_mut()[5] = Value::Float(t.at(5).as_float() + amount);
            t.values_mut()[6] = Value::Int(t.at(6).as_int() + 1);
        },
    )?;
    Ok(())
}

/// Remote half of payment: updates the customer on its home warehouse.
fn payment_customer(ctx: &mut ReactorCtx<'_>, args: &[Value]) -> Result<Value> {
    apply_customer_payment(ctx, args[0].as_int(), args[1].as_int(), args[2].as_float())?;
    Ok(Value::Null)
}

/// The order-status transaction. `args`: `[d_id, c_id]`.
fn order_status(ctx: &mut ReactorCtx<'_>, args: &[Value]) -> Result<Value> {
    let d_id = args[0].as_int();
    let c_id = args[1].as_int();
    let _customer = ctx.get_expected(
        "customer",
        &Key::composite([Key::Int(d_id), Key::Int(c_id)]),
    )?;
    // Most recent order of this customer via the (d_id, o_c_id) index.
    let orders = ctx.index_lookup(
        "orders",
        0,
        &Key::composite([Key::Int(d_id), Key::Int(c_id)]),
    )?;
    let last = orders.iter().map(|(_, t)| t.at(1).as_int()).max();
    let Some(o_id) = last else {
        return Ok(Value::Int(-1));
    };
    let lines = ctx.scan_range(
        "order_line",
        std::ops::Bound::Included(&Key::composite([
            Key::Int(d_id),
            Key::Int(o_id),
            Key::Int(0),
        ])),
        std::ops::Bound::Included(&Key::composite([
            Key::Int(d_id),
            Key::Int(o_id),
            Key::Int(i64::MAX),
        ])),
    )?;
    Ok(Value::Int(lines.len() as i64))
}

/// The delivery transaction. `args`: `[carrier_id, districts]`.
fn delivery(ctx: &mut ReactorCtx<'_>, args: &[Value]) -> Result<Value> {
    let carrier = args[0].as_int();
    let districts = args[1].as_int();
    let mut delivered = 0i64;
    for d_id in 0..districts {
        // Oldest undelivered order of the district.
        let pending = ctx.scan_range(
            "new_order",
            std::ops::Bound::Included(&Key::composite([Key::Int(d_id), Key::Int(0)])),
            std::ops::Bound::Included(&Key::composite([Key::Int(d_id), Key::Int(i64::MAX)])),
        )?;
        let Some((_, oldest)) = pending.first() else {
            continue;
        };
        let o_id = oldest.at(1).as_int();
        ctx.delete(
            "new_order",
            &Key::composite([Key::Int(d_id), Key::Int(o_id)]),
        )?;
        let order = ctx.update_with(
            "orders",
            &Key::composite([Key::Int(d_id), Key::Int(o_id)]),
            |t| {
                t.values_mut()[3] = Value::Int(carrier);
            },
        )?;
        let c_id = order.at(2).as_int();
        let lines = ctx.scan_range(
            "order_line",
            std::ops::Bound::Included(&Key::composite([
                Key::Int(d_id),
                Key::Int(o_id),
                Key::Int(0),
            ])),
            std::ops::Bound::Included(&Key::composite([
                Key::Int(d_id),
                Key::Int(o_id),
                Key::Int(i64::MAX),
            ])),
        )?;
        let mut total = 0.0;
        for (key, line) in &lines {
            total += line.at(6).as_float();
            let mut updated = line.clone();
            updated.values_mut()[7] = Value::Bool(true);
            let _ = key;
            ctx.update("order_line", updated)?;
        }
        ctx.update_with(
            "customer",
            &Key::composite([Key::Int(d_id), Key::Int(c_id)]),
            |t| {
                t.values_mut()[4] = Value::Float(t.at(4).as_float() + total);
                t.values_mut()[7] = Value::Int(t.at(7).as_int() + 1);
            },
        )?;
        delivered += 1;
    }
    Ok(Value::Int(delivered))
}

/// The stock-level transaction. `args`: `[d_id, threshold]`.
fn stock_level(ctx: &mut ReactorCtx<'_>, args: &[Value]) -> Result<Value> {
    let d_id = args[0].as_int();
    let threshold = args[1].as_int();
    let district = ctx.get_expected("district", &Key::Int(d_id))?;
    let next_o_id = district.at(3).as_int();
    let low = (next_o_id - 20).max(0);
    let lines = ctx.scan_range(
        "order_line",
        std::ops::Bound::Included(&Key::composite([
            Key::Int(d_id),
            Key::Int(low),
            Key::Int(0),
        ])),
        std::ops::Bound::Included(&Key::composite([
            Key::Int(d_id),
            Key::Int(next_o_id),
            Key::Int(i64::MAX),
        ])),
    )?;
    let mut item_ids: Vec<i64> = lines.iter().map(|(_, l)| l.at(3).as_int()).collect();
    item_ids.sort_unstable();
    item_ids.dedup();
    let mut low_stock = 0i64;
    for i_id in item_ids {
        let stock = ctx.get_expected("stock", &Key::Int(i_id))?;
        if stock.at(1).as_int() < threshold {
            low_stock += 1;
        }
    }
    Ok(Value::Int(low_stock))
}

/// Builds the TPC-C reactor database specification.
pub fn spec(warehouses: usize) -> ReactorDatabaseSpec {
    let mut warehouse = ReactorType::new("Warehouse");
    for def in relations() {
        warehouse = warehouse.with_relation(def);
    }
    let warehouse = warehouse
        .with_procedure("new_order", new_order)
        .with_procedure("stock_update", stock_update)
        .with_procedure("payment", payment)
        .with_procedure("payment_customer", payment_customer)
        .with_procedure("order_status", order_status)
        .with_procedure("delivery", delivery)
        .with_procedure("stock_level", stock_level);

    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(warehouse);
    for w in 0..warehouses {
        spec.add_reactor(warehouse_name(w), "Warehouse");
    }
    spec
}

/// Loads the TPC-C tables at the given scale.
pub fn load(db: &ReactDB, scale: TpccScale) -> Result<()> {
    for w in 0..scale.warehouses {
        let name = warehouse_name(w);
        db.load_row(
            &name,
            "warehouse",
            Tuple::of([Value::Int(0), Value::Float(0.1), Value::Float(0.0)]),
        )?;
        for d in 0..scale.districts {
            db.load_row(
                &name,
                "district",
                Tuple::of([
                    Value::Int(d as i64),
                    Value::Float(0.05),
                    Value::Float(0.0),
                    Value::Int(1),
                ]),
            )?;
            for c in 0..scale.customers_per_district {
                db.load_row(
                    &name,
                    "customer",
                    Tuple::of([
                        Value::Int(d as i64),
                        Value::Int(c as i64),
                        Value::Str(format!("LAST{}", c % 10)),
                        Value::Str("GC".into()),
                        Value::Float(0.0),
                        Value::Float(0.0),
                        Value::Int(0),
                        Value::Int(0),
                    ]),
                )?;
            }
        }
        for i in 0..scale.items {
            db.load_row(
                &name,
                "item",
                Tuple::of([
                    Value::Int(i as i64),
                    Value::Str(format!("item-{i}")),
                    Value::Float(1.0 + (i % 100) as f64),
                ]),
            )?;
            db.load_row(
                &name,
                "stock",
                Tuple::of([
                    Value::Int(i as i64),
                    Value::Int(100),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(0),
                ]),
            )?;
        }
    }
    Ok(())
}

/// The TPC-C transaction types of the standard mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTxnKind {
    /// New-order (45%).
    NewOrder,
    /// Payment (43%).
    Payment,
    /// Order-status (4%).
    OrderStatus,
    /// Delivery (4%).
    Delivery,
    /// Stock-level (4%).
    StockLevel,
}

/// A generated TPC-C invocation: target warehouse reactor, procedure and
/// arguments for the engine.
#[derive(Debug, Clone)]
pub struct TpccInvocation {
    /// Transaction type.
    pub kind: TpccTxnKind,
    /// Index of the home warehouse reactor.
    pub warehouse: usize,
    /// Procedure name.
    pub proc: &'static str,
    /// Arguments.
    pub args: Vec<Value>,
}

/// Input generator for the TPC-C workload, parameterised by the knobs the
/// evaluation varies.
#[derive(Debug, Clone)]
pub struct TpccGenerator {
    /// Scale (cardinalities).
    pub scale: TpccScale,
    /// Probability that an individual new-order item is drawn from a remote
    /// warehouse (1% in the standard mix, varied in Appendix E).
    pub remote_item_prob: f64,
    /// Probability that a payment is for a remote customer (15% standard).
    pub remote_payment_prob: f64,
    /// If `Some`, only new-order transactions are generated and every remote
    /// stock update performs this much busy-work (the new-order-delay
    /// workload of §4.3.2, units of `busy_work` iterations ≈ µs·80).
    pub new_order_delay_units: Option<(u64, u64)>,
    /// If true only new-order transactions are generated (Appendix E).
    pub new_order_only: bool,
    customer_gen: NonUniform,
    item_gen: NonUniform,
}

impl TpccGenerator {
    /// Standard-mix generator at the given scale.
    pub fn standard(scale: TpccScale) -> Self {
        Self {
            scale,
            remote_item_prob: 0.01,
            remote_payment_prob: 0.15,
            new_order_delay_units: None,
            new_order_only: false,
            customer_gen: NonUniform::new(1023, 259, 0, scale.customers_per_district as u64 - 1),
            item_gen: NonUniform::new(8191, 7911, 0, scale.items as u64 - 1),
        }
    }

    /// Home warehouse of a worker (client affinity, §4.1.3).
    pub fn home_warehouse(&self, worker: usize) -> usize {
        worker % self.scale.warehouses
    }

    fn pick_remote_warehouse(&self, home: usize, rng: &mut StdRng) -> usize {
        if self.scale.warehouses <= 1 {
            return home;
        }
        loop {
            let w = rng.gen_range(0..self.scale.warehouses);
            if w != home {
                return w;
            }
        }
    }

    /// Generates the next invocation for `worker`.
    pub fn next(&self, worker: usize, rng: &mut StdRng) -> TpccInvocation {
        let home = self.home_warehouse(worker);
        let kind = if self.new_order_only || self.new_order_delay_units.is_some() {
            TpccTxnKind::NewOrder
        } else {
            match rng.gen_range(0..100) {
                0..=44 => TpccTxnKind::NewOrder,
                45..=87 => TpccTxnKind::Payment,
                88..=91 => TpccTxnKind::OrderStatus,
                92..=95 => TpccTxnKind::Delivery,
                _ => TpccTxnKind::StockLevel,
            }
        };
        match kind {
            TpccTxnKind::NewOrder => self.gen_new_order(home, rng),
            TpccTxnKind::Payment => self.gen_payment(home, rng),
            TpccTxnKind::OrderStatus => TpccInvocation {
                kind,
                warehouse: home,
                proc: "order_status",
                args: vec![
                    Value::Int(rng.gen_range(0..self.scale.districts) as i64),
                    Value::Int(self.customer_gen.sample(rng) as i64),
                ],
            },
            TpccTxnKind::Delivery => TpccInvocation {
                kind,
                warehouse: home,
                proc: "delivery",
                args: vec![
                    Value::Int(rng.gen_range(1..=10)),
                    Value::Int(self.scale.districts as i64),
                ],
            },
            TpccTxnKind::StockLevel => TpccInvocation {
                kind,
                warehouse: home,
                proc: "stock_level",
                args: vec![
                    Value::Int(rng.gen_range(0..self.scale.districts) as i64),
                    Value::Int(rng.gen_range(10..=20)),
                ],
            },
        }
    }

    fn gen_new_order(&self, home: usize, rng: &mut StdRng) -> TpccInvocation {
        let d_id = rng.gen_range(0..self.scale.districts) as i64;
        let c_id = self.customer_gen.sample(rng) as i64;
        let ol_cnt = rng.gen_range(5..=15);
        let delay = match self.new_order_delay_units {
            Some((lo, hi)) => rng.gen_range(lo..=hi) as i64,
            None => 0,
        };
        let mut args = vec![Value::Int(d_id), Value::Int(c_id), Value::Int(delay)];
        for _ in 0..ol_cnt {
            let i_id = self.item_gen.sample(rng) as i64;
            let supply = if rng.gen_bool(self.remote_item_prob) {
                self.pick_remote_warehouse(home, rng)
            } else {
                home
            };
            args.push(Value::Int(i_id));
            args.push(Value::Str(warehouse_name(supply)));
            args.push(Value::Int(rng.gen_range(1..=10)));
        }
        TpccInvocation {
            kind: TpccTxnKind::NewOrder,
            warehouse: home,
            proc: "new_order",
            args,
        }
    }

    fn gen_payment(&self, home: usize, rng: &mut StdRng) -> TpccInvocation {
        let d_id = rng.gen_range(0..self.scale.districts) as i64;
        let c_id = self.customer_gen.sample(rng) as i64;
        let amount = rng.gen_range(1.0..5000.0);
        let customer_warehouse = if rng.gen_bool(self.remote_payment_prob) {
            self.pick_remote_warehouse(home, rng)
        } else {
            home
        };
        TpccInvocation {
            kind: TpccTxnKind::Payment,
            warehouse: home,
            proc: "payment",
            args: vec![
                Value::Int(d_id),
                Value::Int(c_id),
                Value::Float(amount),
                Value::Str(warehouse_name(customer_warehouse)),
                Value::Int(d_id),
            ],
        }
    }
}

// ---------------------------------------------------------------------------
// Simulator profiles.
// ---------------------------------------------------------------------------

/// Calibrated per-transaction processing costs (µs) for the simulator,
/// derived from the relative record-operation counts of the five TPC-C
/// transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpccSimCosts {
    /// Fixed new-order processing (warehouse/district/customer/order).
    pub new_order_base_us: f64,
    /// Per order-line processing (item read, order-line insert).
    pub per_item_us: f64,
    /// One stock update.
    pub stock_update_us: f64,
    /// Payment processing on the home warehouse.
    pub payment_base_us: f64,
    /// Remote customer update.
    pub payment_customer_us: f64,
    /// Order-status processing.
    pub order_status_us: f64,
    /// Delivery processing (ten districts).
    pub delivery_us: f64,
    /// Stock-level processing.
    pub stock_level_us: f64,
}

impl Default for TpccSimCosts {
    fn default() -> Self {
        Self {
            new_order_base_us: 20.0,
            per_item_us: 4.0,
            stock_update_us: 5.0,
            payment_base_us: 25.0,
            payment_customer_us: 8.0,
            order_status_us: 30.0,
            delivery_us: 120.0,
            stock_level_us: 80.0,
        }
    }
}

/// Simulator workload generating the TPC-C mix with the same knobs as
/// [`TpccGenerator`]. Workers have client affinity to warehouses.
#[derive(Debug, Clone)]
pub struct TpccSimWorkload {
    /// Number of warehouse reactors.
    pub warehouses: usize,
    /// Probability of a remote item per order line.
    pub remote_item_prob: f64,
    /// Probability of a remote payment customer.
    pub remote_payment_prob: f64,
    /// Only new-order transactions.
    pub new_order_only: bool,
    /// Extra per-remote-stock-update delay in µs (new-order-delay, §4.3.2).
    pub delay_us: Option<(f64, f64)>,
    /// Per-transaction processing costs.
    pub costs: TpccSimCosts,
}

impl TpccSimWorkload {
    /// Standard mix at the given number of warehouses.
    pub fn standard(warehouses: usize) -> Self {
        Self {
            warehouses,
            remote_item_prob: 0.01,
            remote_payment_prob: 0.15,
            new_order_only: false,
            delay_us: None,
            costs: TpccSimCosts::default(),
        }
    }

    fn new_order_profile(&self, home: usize, rng: &mut StdRng) -> SimTxn {
        let ol_cnt = rng.gen_range(5..=15);
        let mut remote: Vec<usize> = Vec::new();
        let mut local_items = 0usize;
        for _ in 0..ol_cnt {
            if self.warehouses > 1 && rng.gen_bool(self.remote_item_prob) {
                loop {
                    let w = rng.gen_range(0..self.warehouses);
                    if w != home {
                        remote.push(w);
                        break;
                    }
                }
            } else {
                local_items += 1;
            }
        }
        let delay = match self.delay_us {
            Some((lo, hi)) => rng.gen_range(lo..=hi),
            None => 0.0,
        };
        let local_work = self.costs.new_order_base_us
            + ol_cnt as f64 * self.costs.per_item_us
            + local_items as f64 * self.costs.stock_update_us;
        let mut txn = SimTxn::leaf(home, self.costs.new_order_base_us)
            .with_overlap(local_work - self.costs.new_order_base_us);
        for w in remote {
            txn = txn.with_async(SimTxn::leaf(w, self.costs.stock_update_us + delay));
        }
        txn
    }

    fn payment_profile(&self, home: usize, rng: &mut StdRng) -> SimTxn {
        let mut txn = SimTxn::leaf(home, self.costs.payment_base_us);
        if self.warehouses > 1 && rng.gen_bool(self.remote_payment_prob) {
            let mut w = rng.gen_range(0..self.warehouses);
            while w == home {
                w = rng.gen_range(0..self.warehouses);
            }
            txn = txn.with_async(SimTxn::leaf(w, self.costs.payment_customer_us));
        } else {
            txn = txn.with_overlap(self.costs.payment_customer_us);
        }
        txn
    }
}

impl reactdb_sim::SimWorkload for TpccSimWorkload {
    fn next_txn(&mut self, worker: usize, rng: &mut StdRng) -> SimTxn {
        let home = worker % self.warehouses;
        if self.new_order_only || self.delay_us.is_some() {
            return self.new_order_profile(home, rng);
        }
        match rng.gen_range(0..100) {
            0..=44 => self.new_order_profile(home, rng),
            45..=87 => self.payment_profile(home, rng),
            88..=91 => SimTxn::leaf(home, self.costs.order_status_us),
            92..=95 => SimTxn::leaf(home, self.costs.delivery_us),
            _ => SimTxn::leaf(home, self.costs.stock_level_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use reactdb_common::DeploymentConfig;

    fn tiny_db(warehouses: usize, config: DeploymentConfig) -> ReactDB {
        let db = ReactDB::boot(spec(warehouses), config);
        load(&db, TpccScale::tiny(warehouses)).unwrap();
        db
    }

    fn new_order_args(d: i64, c: i64, items: &[(i64, usize, i64)]) -> Vec<Value> {
        let mut args = vec![Value::Int(d), Value::Int(c), Value::Int(0)];
        for (i, w, q) in items {
            args.push(Value::Int(*i));
            args.push(Value::Str(warehouse_name(*w)));
            args.push(Value::Int(*q));
        }
        args
    }

    #[test]
    fn new_order_allocates_ids_and_inserts_lines() {
        let db = tiny_db(2, DeploymentConfig::shared_nothing(2));
        let o1 = db
            .invoke(
                &warehouse_name(0),
                "new_order",
                new_order_args(0, 1, &[(1, 0, 3), (2, 0, 1)]),
            )
            .unwrap();
        let o2 = db
            .invoke(
                &warehouse_name(0),
                "new_order",
                new_order_args(0, 2, &[(3, 0, 2)]),
            )
            .unwrap();
        assert_eq!(o1, Value::Int(1));
        assert_eq!(o2, Value::Int(2));
        assert_eq!(
            db.table(&warehouse_name(0), "orders")
                .unwrap()
                .visible_len(),
            2
        );
        assert_eq!(
            db.table(&warehouse_name(0), "order_line")
                .unwrap()
                .visible_len(),
            3
        );
        assert_eq!(
            db.table(&warehouse_name(0), "new_order")
                .unwrap()
                .visible_len(),
            2
        );
    }

    #[test]
    fn remote_items_update_the_remote_warehouse_stock() {
        for config in [
            DeploymentConfig::shared_nothing(2),
            DeploymentConfig::shared_everything_with_affinity(2),
        ] {
            let db = tiny_db(2, config);
            db.invoke(
                &warehouse_name(0),
                "new_order",
                new_order_args(0, 1, &[(7, 1, 5), (8, 0, 2)]),
            )
            .unwrap();
            let remote_stock = db
                .table(&warehouse_name(1), "stock")
                .unwrap()
                .get(&Key::Int(7))
                .unwrap();
            let row = remote_stock.read_unguarded();
            assert_eq!(row.at(1), &Value::Int(95));
            assert_eq!(row.at(4), &Value::Int(1), "remote counter must increase");
            let local_stock = db
                .table(&warehouse_name(0), "stock")
                .unwrap()
                .get(&Key::Int(8))
                .unwrap();
            assert_eq!(local_stock.read_unguarded().at(1), &Value::Int(98));
        }
    }

    #[test]
    fn stock_wraps_around_below_threshold() {
        let db = tiny_db(1, DeploymentConfig::shared_everything_with_affinity(1));
        for _ in 0..11 {
            db.invoke(
                &warehouse_name(0),
                "new_order",
                new_order_args(0, 0, &[(5, 0, 9)]),
            )
            .unwrap();
        }
        let stock = db
            .table(&warehouse_name(0), "stock")
            .unwrap()
            .get(&Key::Int(5))
            .unwrap();
        // 100 - 11*9 = 1 without wrap; the wrap adds 91 once the quantity
        // would fall below 10.
        let q = stock.read_unguarded().at(1).as_int();
        assert!(q >= 10, "stock must be replenished, got {q}");
    }

    #[test]
    fn payment_updates_ytd_and_customer_local_and_remote() {
        let db = tiny_db(2, DeploymentConfig::shared_nothing(2));
        // Local customer.
        db.invoke(
            &warehouse_name(0),
            "payment",
            vec![
                Value::Int(0),
                Value::Int(1),
                Value::Float(100.0),
                Value::Str(warehouse_name(0)),
                Value::Int(0),
            ],
        )
        .unwrap();
        // Remote customer at warehouse 1.
        db.invoke(
            &warehouse_name(0),
            "payment",
            vec![
                Value::Int(0),
                Value::Int(2),
                Value::Float(50.0),
                Value::Str(warehouse_name(1)),
                Value::Int(1),
            ],
        )
        .unwrap();
        let w = db
            .table(&warehouse_name(0), "warehouse")
            .unwrap()
            .get(&Key::Int(0))
            .unwrap();
        assert_eq!(w.read_unguarded().at(2), &Value::Float(150.0));
        let local_cust = db
            .table(&warehouse_name(0), "customer")
            .unwrap()
            .get(&Key::composite([Key::Int(0), Key::Int(1)]))
            .unwrap();
        assert_eq!(local_cust.read_unguarded().at(4), &Value::Float(-100.0));
        let remote_cust = db
            .table(&warehouse_name(1), "customer")
            .unwrap()
            .get(&Key::composite([Key::Int(1), Key::Int(2)]))
            .unwrap();
        assert_eq!(remote_cust.read_unguarded().at(4), &Value::Float(-50.0));
        assert_eq!(
            db.table(&warehouse_name(0), "history")
                .unwrap()
                .visible_len(),
            2
        );
    }

    #[test]
    fn order_status_delivery_and_stock_level_run() {
        let db = tiny_db(1, DeploymentConfig::shared_everything_with_affinity(1));
        db.invoke(
            &warehouse_name(0),
            "new_order",
            new_order_args(1, 3, &[(1, 0, 1), (2, 0, 2)]),
        )
        .unwrap();
        let status = db
            .invoke(
                &warehouse_name(0),
                "order_status",
                vec![Value::Int(1), Value::Int(3)],
            )
            .unwrap();
        assert_eq!(status, Value::Int(2));

        let delivered = db
            .invoke(
                &warehouse_name(0),
                "delivery",
                vec![Value::Int(5), Value::Int(2)],
            )
            .unwrap();
        assert_eq!(delivered, Value::Int(1));
        // The new_order entry is consumed.
        assert_eq!(
            db.table(&warehouse_name(0), "new_order")
                .unwrap()
                .visible_len(),
            0
        );
        // Customer balance now carries the order total.
        let cust = db
            .table(&warehouse_name(0), "customer")
            .unwrap()
            .get(&Key::composite([Key::Int(1), Key::Int(3)]))
            .unwrap();
        assert!(cust.read_unguarded().at(4).as_float() > 0.0);

        let low = db
            .invoke(
                &warehouse_name(0),
                "stock_level",
                vec![Value::Int(1), Value::Int(200)],
            )
            .unwrap();
        assert_eq!(
            low,
            Value::Int(2),
            "both touched items are below an impossible threshold"
        );
    }

    #[test]
    fn generator_respects_mix_and_affinity() {
        let scale = TpccScale::tiny(4);
        let gen = TpccGenerator::standard(scale);
        let mut rng = StdRng::seed_from_u64(1);
        let mut new_orders = 0;
        let mut payments = 0;
        for _ in 0..2000 {
            let inv = gen.next(2, &mut rng);
            assert_eq!(inv.warehouse, 2, "client affinity to the home warehouse");
            match inv.kind {
                TpccTxnKind::NewOrder => new_orders += 1,
                TpccTxnKind::Payment => payments += 1,
                _ => {}
            }
        }
        assert!((new_orders as f64 / 2000.0 - 0.45).abs() < 0.05);
        assert!((payments as f64 / 2000.0 - 0.43).abs() < 0.05);
    }

    #[test]
    fn generated_invocations_execute_on_the_engine() {
        let db = tiny_db(2, DeploymentConfig::shared_nothing(2));
        let client = db.client();
        let retry = reactdb_engine::RetryPolicy::occ();
        let gen = TpccGenerator::standard(TpccScale::tiny(2));
        let mut rng = StdRng::seed_from_u64(7);
        let mut committed = 0;
        for i in 0..60 {
            let inv = gen.next(i % 2, &mut rng);
            match client.invoke_with_retry(
                &warehouse_name(inv.warehouse),
                inv.proc,
                inv.args.clone(),
                &retry,
            ) {
                Ok(_) => committed += 1,
                Err(e) if e.is_cc_abort() => {}
                Err(e) => panic!("unexpected error {e:?} for {inv:?}"),
            }
        }
        assert!(committed > 50);
        assert_eq!(client.stats().in_flight, 0);
    }

    #[test]
    fn sim_workload_produces_remote_children_proportional_to_probability() {
        use reactdb_sim::SimWorkload as _;
        let mut wl = TpccSimWorkload {
            warehouses: 8,
            remote_item_prob: 1.0,
            remote_payment_prob: 0.15,
            new_order_only: true,
            delay_us: None,
            costs: TpccSimCosts::default(),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let txn = wl.next_txn(0, &mut rng);
        assert!(txn.async_children.len() >= 5, "all items remote");
        let mut wl_local = TpccSimWorkload {
            remote_item_prob: 0.0,
            ..wl.clone()
        };
        let txn = wl_local.next_txn(0, &mut rng);
        assert!(txn.async_children.is_empty());
    }
}
