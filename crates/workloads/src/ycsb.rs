//! YCSB with the `multi_update` transaction (Appendix C), plus a
//! YCSB-E-style scan workload over range-partitioned shards.
//!
//! Each key is modelled as a reactor holding a single-row `usertable`
//! relation. The `multi_update` transaction performs a read-modify-write on
//! ten keys, invoking an `update` sub-transaction asynchronously on each key
//! reactor; keys are selected from a zipfian distribution whose constant
//! controls skew. Keys owned by remote executors are sorted before local
//! ones so that transactions remain fork-join (as the appendix describes).
//!
//! The scan variant ([`range_spec`]) models YCSB-E: `YcsbShard` reactors
//! each encapsulate a contiguous slice of the keyspace in one multi-row
//! `usertable`, and the workload mixes short bounded scans (the dominant
//! operation) with record inserts — exactly the mix that exercises
//! phantom-safe range scans, since every insert changes the membership of
//! ranges concurrent scans may cover.

use rand::rngs::StdRng;
use rand::Rng;
use reactdb_common::zipf::Zipfian;
use reactdb_common::{Key, Result, Value};
use reactdb_core::{ReactorDatabaseSpec, ReactorType};
use reactdb_engine::ReactDB;
use reactdb_sim::SimTxn;
use reactdb_storage::{ColumnType, RelationDef, Schema, Tuple};

/// Name of the key reactor with index `idx`.
pub fn key_name(idx: usize) -> String {
    format!("key-{idx}")
}

/// Number of keys touched by one `multi_update` transaction.
pub const KEYS_PER_TXN: usize = 10;

/// Record payload size in bytes (the appendix uses 100-byte records).
pub const RECORD_SIZE: usize = 100;

/// Processing cost of a single read-modify-write update, for the simulator
/// and the cost-model prediction (µs).
pub const UPDATE_COST_US: f64 = 1.5;

/// Builds the YCSB reactor database specification with `keys` key-reactors.
pub fn spec(keys: usize) -> ReactorDatabaseSpec {
    let key_type = ReactorType::new("YcsbKey")
        .with_relation(RelationDef::new(
            "usertable",
            Schema::of(
                &[("id", ColumnType::Int), ("field", ColumnType::Str)],
                &["id"],
            ),
        ))
        .with_procedure("read", |ctx, _args| {
            let row = ctx.get_expected("usertable", &Key::Int(0))?;
            Ok(row.at(1).clone())
        })
        .with_procedure("update", |ctx, args| {
            // Read-modify-write of the single record held by this reactor.
            let suffix = args[0].as_str().to_owned();
            let row = ctx.update_with("usertable", &Key::Int(0), |t| {
                let mut field = t.at(1).as_str().to_owned();
                field.truncate(RECORD_SIZE.saturating_sub(suffix.len()));
                field.push_str(&suffix);
                t.values_mut()[1] = Value::Str(field);
            })?;
            Ok(Value::Int(row.at(1).as_str().len() as i64))
        })
        .with_procedure("multi_update", |ctx, args| {
            // args: payload suffix followed by the target key reactor names.
            let suffix = args[0].as_str().to_owned();
            for target in &args[1..] {
                ctx.call(target.as_str(), "update", vec![Value::Str(suffix.clone())])?;
            }
            Ok(Value::Int((args.len() - 1) as i64))
        });

    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(key_type);
    for i in 0..keys {
        spec.add_reactor(key_name(i), "YcsbKey");
    }
    spec
}

/// Loads one 100-byte record into every key reactor.
pub fn load(db: &ReactDB, keys: usize) -> Result<()> {
    for i in 0..keys {
        db.load_row(
            &key_name(i),
            "usertable",
            Tuple::of([Value::Int(0), Value::Str("x".repeat(RECORD_SIZE))]),
        )?;
    }
    Ok(())
}

/// Generates the keys of one `multi_update`: zipfian-distributed, deduplicated,
/// sorted so that remote keys precede local ones (fork-join shape).
pub fn pick_keys(
    zipf: &Zipfian,
    rng: &mut StdRng,
    executor_of: impl Fn(usize) -> usize,
    home_executor: usize,
) -> Vec<usize> {
    let mut keys = Vec::with_capacity(KEYS_PER_TXN);
    while keys.len() < KEYS_PER_TXN {
        let k = zipf.sample(rng) as usize;
        if !keys.contains(&k) {
            keys.push(k);
        } else if zipf.theta() >= 4.0 {
            // Extremely skewed distributions may not have ten distinct keys
            // in practice; allow duplicates so the loop terminates (the
            // appendix's 5.0-skew case effectively touches a single key).
            keys.push(k);
        }
    }
    keys.sort_by_key(|k| {
        if executor_of(*k) == home_executor {
            1
        } else {
            0
        }
    });
    keys
}

/// Builds the engine invocation for a `multi_update` over `keys`, invoked on
/// the first key's reactor.
pub fn multi_update_invocation(keys: &[usize]) -> (String, Vec<Value>) {
    let target = key_name(keys[0]);
    let mut args = vec![Value::Str("y".repeat(8))];
    args.extend(keys.iter().map(|k| Value::Str(key_name(*k))));
    (target, args)
}

// ---------------------------------------------------------------------------
// YCSB-E: range-partitioned shards with a scan/insert mix.
// ---------------------------------------------------------------------------

/// Name of the range-shard reactor with index `idx`.
pub fn shard_name(idx: usize) -> String {
    format!("shard-{idx}")
}

/// Fraction of scan operations in the YCSB-E mix (the standard E profile is
/// 95% scans / 5% inserts).
pub const E_SCAN_FRACTION: f64 = 0.95;

/// Maximum scan length of the YCSB-E mix.
pub const E_MAX_SCAN_LEN: i64 = 100;

/// Builds the YCSB-E reactor database: `shards` `YcsbShard` reactors, each
/// encapsulating a multi-row slice of the keyspace.
pub fn range_spec(shards: usize) -> ReactorDatabaseSpec {
    let shard = ReactorType::new("YcsbShard")
        .with_relation(RelationDef::new(
            "usertable",
            Schema::of(
                &[("id", ColumnType::Int), ("field", ColumnType::Str)],
                &["id"],
            ),
        ))
        .with_procedure("scan_e", |ctx, args| {
            // args: [start, len] — the YCSB-E SCAN: a bounded range read of
            // up to `len` records starting at `start`. Phantom-safe: the
            // traversed index nodes are validated at commit.
            let start = args[0].as_int();
            let len = args[1].as_int().max(0);
            let rows = ctx.scan_bounded("usertable", Key::Int(start)..Key::Int(start + len))?;
            Ok(Value::Int(rows.len() as i64))
        })
        .with_procedure("insert_e", |ctx, args| {
            // args: [id, payload] — the YCSB-E INSERT.
            ctx.insert(
                "usertable",
                Tuple::of([Value::Int(args[0].as_int()), args[1].clone()]),
            )?;
            Ok(Value::Null)
        })
        .with_procedure("read_e", |ctx, args| {
            let row = ctx.get("usertable", &Key::Int(args[0].as_int()))?;
            Ok(row.map(|r| r.at(1).clone()).unwrap_or(Value::Null))
        })
        .with_procedure("update_e", |ctx, args| {
            let payload = args[1].clone();
            ctx.update_with("usertable", &Key::Int(args[0].as_int()), |t| {
                t.values_mut()[1] = payload.clone();
            })?;
            Ok(Value::Null)
        });

    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(shard);
    for i in 0..shards {
        spec.add_reactor(shard_name(i), "YcsbShard");
    }
    spec
}

/// Id of the first key of shard `s`'s slice. Each slice is twice
/// `keys_per_shard` wide: the lower half is populated by [`load_range`],
/// the upper half receives the mix's inserts — directly above the scanned
/// region, so inserts land inside ranges concurrent scans cover and the
/// phantom path is genuinely exercised.
pub fn shard_base(shard: usize, keys_per_shard: usize) -> i64 {
    (shard * 2 * keys_per_shard) as i64
}

/// Loads `keys_per_shard` records into the lower half of every shard's
/// slice of the keyspace.
pub fn load_range(db: &ReactDB, shards: usize, keys_per_shard: usize) -> Result<()> {
    for s in 0..shards {
        let base = shard_base(s, keys_per_shard);
        for i in 0..keys_per_shard as i64 {
            db.load_row(
                &shard_name(s),
                "usertable",
                Tuple::of([Value::Int(base + i), Value::Str("x".repeat(RECORD_SIZE))]),
            )?;
        }
    }
    Ok(())
}

/// Creates the per-shard insert sequences shared by every worker of an
/// E-mix run (one counter per shard, so inserted ids stay dense within
/// each shard's slice).
pub fn e_insert_seqs(shards: usize) -> Vec<std::sync::atomic::AtomicI64> {
    (0..shards)
        .map(|_| std::sync::atomic::AtomicI64::new(0))
        .collect()
}

/// One operation of the YCSB-E mix: the target shard reactor, procedure
/// name, and arguments. Scans dominate ([`E_SCAN_FRACTION`]); the rest are
/// inserts of fresh ids drawn from the target shard's counter in
/// `insert_seqs` (see [`e_insert_seqs`]), which the caller shares across
/// workers so ids within a shard never collide.
///
/// # Panics
/// Panics when `insert_seqs` does not hold one counter per shard.
pub fn e_mix_invocation(
    rng: &mut StdRng,
    shards: usize,
    keys_per_shard: usize,
    insert_seqs: &[std::sync::atomic::AtomicI64],
) -> (String, &'static str, Vec<Value>) {
    assert_eq!(insert_seqs.len(), shards, "one insert counter per shard");
    let shard = rng.gen_range(0..shards);
    let base = shard_base(shard, keys_per_shard);
    if rng.gen_range(0.0..1.0) < E_SCAN_FRACTION {
        let start = base + rng.gen_range(0..keys_per_shard as i64);
        let len = 1 + rng.gen_range(0..E_MAX_SCAN_LEN);
        (
            shard_name(shard),
            "scan_e",
            vec![Value::Int(start), Value::Int(len)],
        )
    } else {
        // Fresh ids fill the upper half of the slice, immediately above
        // the loaded keys: scans whose window reaches past the loaded
        // region race these inserts and must re-validate their node sets.
        let id = base
            + keys_per_shard as i64
            + insert_seqs[shard].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (
            shard_name(shard),
            "insert_e",
            vec![Value::Int(id), Value::Str("y".repeat(RECORD_SIZE))],
        )
    }
}

/// Simulator workload for the skew experiment of Appendix C.
#[derive(Debug, Clone)]
pub struct YcsbSimWorkload {
    /// Total number of key reactors (scale factor × 10 000).
    pub keys: usize,
    /// Number of executors the keys are striped over.
    pub executors: usize,
    /// Zipfian constant controlling skew.
    pub theta: f64,
    zipf: Zipfian,
}

impl YcsbSimWorkload {
    /// Creates the workload.
    pub fn new(keys: usize, executors: usize, theta: f64) -> Self {
        Self {
            keys,
            executors,
            theta,
            zipf: Zipfian::new(keys as u64, theta),
        }
    }
}

impl reactdb_sim::SimWorkload for YcsbSimWorkload {
    fn next_txn(&mut self, _worker: usize, rng: &mut StdRng) -> SimTxn {
        let executors = self.executors;
        let keys = pick_keys(&self.zipf, rng, |k| k % executors, usize::MAX);
        // The transaction is invoked on a randomly chosen reactor among the
        // ten keys (Appendix C).
        let root_key = keys[rng.gen_range(0..keys.len())];
        let home_exec = root_key % executors;
        let mut txn = SimTxn::leaf(root_key, 1.0);
        let mut local_work = 0.0;
        for k in keys {
            if k % executors == home_exec {
                local_work += UPDATE_COST_US;
            } else {
                txn = txn.with_async(SimTxn::leaf(k, UPDATE_COST_US));
            }
        }
        txn.with_overlap(local_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use reactdb_common::DeploymentConfig;
    use reactdb_sim::SimWorkload as _;

    #[test]
    fn multi_update_touches_every_target_reactor() {
        let db = ReactDB::boot(spec(12), DeploymentConfig::shared_nothing(4));
        load(&db, 12).unwrap();
        let client = db.client();
        let keys = [3, 7, 11];
        let (target, args) = multi_update_invocation(&keys);
        let touched = client.invoke(&target, "multi_update", args).unwrap();
        assert_eq!(touched, Value::Int(3));
        // Pipelined read-back of every touched reactor.
        let reads = client
            .submit_batch(keys.map(|k| reactdb_engine::Call::new(key_name(k), "read", vec![])))
            .unwrap();
        for handle in &reads {
            assert_eq!(
                handle.wait().unwrap(),
                Value::Str(format!("{}{}", "x".repeat(RECORD_SIZE - 8), "y".repeat(8)))
            );
        }
        // Untouched keys keep their original payload.
        assert_eq!(
            client.invoke(&key_name(0), "read", vec![]).unwrap(),
            Value::Str("x".repeat(RECORD_SIZE))
        );
    }

    #[test]
    fn scan_e_reads_bounded_windows_and_sees_inserts() {
        let db = ReactDB::boot(range_spec(2), DeploymentConfig::shared_nothing(2));
        load_range(&db, 2, 100).unwrap();
        let client = db.client();
        let base = shard_base(1, 100);
        // A window fully inside the loaded region.
        let n = client
            .invoke(
                &shard_name(1),
                "scan_e",
                vec![Value::Int(base), Value::Int(10)],
            )
            .unwrap();
        assert_eq!(n, Value::Int(10));
        // A window reaching past the loaded region sees fewer rows...
        let n = client
            .invoke(
                &shard_name(1),
                "scan_e",
                vec![Value::Int(base + 95), Value::Int(10)],
            )
            .unwrap();
        assert_eq!(n, Value::Int(5));
        // ...until an insert lands inside it.
        client
            .invoke(
                &shard_name(1),
                "insert_e",
                vec![Value::Int(base + 100), Value::Str("new".into())],
            )
            .unwrap();
        let n = client
            .invoke(
                &shard_name(1),
                "scan_e",
                vec![Value::Int(base + 95), Value::Int(10)],
            )
            .unwrap();
        assert_eq!(n, Value::Int(6));
        assert!(db.stats().scan_ops() >= 3, "scans are counted");
    }

    #[test]
    fn e_mix_under_concurrent_load_stays_consistent() {
        use reactdb_engine::RetryPolicy;
        use std::sync::Arc;

        let shards = 2;
        let kps = 120;
        let db = Arc::new(ReactDB::boot(
            range_spec(shards),
            DeploymentConfig::shared_nothing(2),
        ));
        load_range(&db, shards, kps).unwrap();
        let insert_seqs = Arc::new(e_insert_seqs(shards));

        let threads: Vec<_> = (0..3)
            .map(|worker| {
                let db = Arc::clone(&db);
                let insert_seqs = Arc::clone(&insert_seqs);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(worker);
                    let mut committed = 0u64;
                    for _ in 0..120 {
                        let (reactor, proc, args) =
                            e_mix_invocation(&mut rng, shards, kps, &insert_seqs);
                        // Phantom and validation aborts are transient; the
                        // retry policy drives the scan to a clean commit.
                        match db.client().invoke_with_retry(
                            &reactor,
                            proc,
                            args,
                            &RetryPolicy::occ(),
                        ) {
                            Ok(_) => committed += 1,
                            Err(e) if e.is_cc_abort() => {}
                            Err(e) => panic!("unexpected error {e:?}"),
                        }
                    }
                    committed
                })
            })
            .collect();
        let committed: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(committed > 0);
        // Every insert that committed is present exactly once: the loaded
        // rows plus the successful inserts add up.
        let total_rows: usize = (0..shards)
            .map(|s| db.table(&shard_name(s), "usertable").unwrap().visible_len())
            .sum();
        let inserted: usize = insert_seqs
            .iter()
            .map(|s| s.load(std::sync::atomic::Ordering::Relaxed) as usize)
            .sum();
        assert!(total_rows >= shards * kps && total_rows <= shards * kps + inserted);
        assert!(db.stats().scan_ops() > 0);
        // Phantom aborts, when they occurred, were classified as such and
        // retried (never surfaced); the counter is merely informative here.
        let _ = db.stats().phantom_aborts();
    }

    #[test]
    fn pick_keys_orders_remote_before_local() {
        let zipf = Zipfian::new(1000, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let keys = pick_keys(&zipf, &mut rng, |k| k % 4, 2);
        assert_eq!(keys.len(), KEYS_PER_TXN);
        let first_local = keys.iter().position(|k| k % 4 == 2);
        if let Some(pos) = first_local {
            assert!(
                keys[pos..].iter().all(|k| k % 4 == 2),
                "locals are a suffix: {keys:?}"
            );
        }
    }

    #[test]
    fn higher_skew_means_fewer_remote_children() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut low = YcsbSimWorkload::new(40_000, 4, 0.01);
        let mut high = YcsbSimWorkload::new(40_000, 4, 5.0);
        let avg_remote = |wl: &mut YcsbSimWorkload, rng: &mut StdRng| {
            let total: usize = (0..200)
                .map(|_| wl.next_txn(0, rng).async_children.len())
                .sum();
            total as f64 / 200.0
        };
        let low_remote = avg_remote(&mut low, &mut rng);
        let high_remote = avg_remote(&mut high, &mut rng);
        assert!(
            low_remote > high_remote,
            "uniform access should hit more remote executors ({low_remote} vs {high_remote})"
        );
        assert!(
            high_remote < 1.0,
            "at skew 5.0 nearly everything is the same key"
        );
    }
}
