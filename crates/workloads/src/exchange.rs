//! The digital currency exchange of Figure 1 (§1) and Appendix G.
//!
//! The exchange authorises payments subject to two risk rules: a per-provider
//! unsettled-exposure limit and a global risk-adjusted exposure limit whose
//! computation (`sim_risk`) is expensive. The reactor-model formulation
//! (Figure 1(b)) parallelises `calc_risk` across `Provider` reactors; the
//! classic formulation (Figure 1(a)) runs everything inside one reactor.
//! Appendix G compares three execution strategies: `sequential`,
//! `query-parallelism` (only the exposure aggregation is parallelised) and
//! `procedure-parallelism` (the full reactor-model decomposition).

use rand::rngs::StdRng;
use rand::Rng;
use reactdb_common::{Key, Result, Value};
use reactdb_core::{ReactorDatabaseSpec, ReactorType};
use reactdb_engine::ReactDB;
use reactdb_sim::SimTxn;
use reactdb_storage::{ColumnType, RelationDef, Schema, Tuple};

/// Name of the exchange reactor.
pub const EXCHANGE: &str = "exchange";

/// Name of the provider reactor with index `idx`.
pub fn provider_name(idx: usize) -> String {
    format!("provider-{idx}")
}

/// Execution strategies compared in Appendix G / Figure 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Classic single-reactor formulation executed sequentially.
    Sequential,
    /// The exposure aggregation (the join) is parallelised across provider
    /// partitions, but `sim_risk` runs sequentially on the exchange.
    QueryParallelism,
    /// Full reactor-model decomposition: `calc_risk` (including `sim_risk`)
    /// runs on each provider reactor in parallel.
    ProcedureParallelism,
}

impl Strategy {
    /// All strategies in the order plotted in Figure 19.
    pub fn all() -> [Strategy; 3] {
        [
            Strategy::Sequential,
            Strategy::QueryParallelism,
            Strategy::ProcedureParallelism,
        ]
    }

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Sequential => "sequential",
            Strategy::QueryParallelism => "query-parallelism",
            Strategy::ProcedureParallelism => "procedure-parallelism",
        }
    }
}

/// Builds the exchange reactor database: one `Exchange` reactor plus
/// `providers` `Provider` reactors.
pub fn spec(providers: usize) -> ReactorDatabaseSpec {
    let provider = ReactorType::new("Provider")
        .with_relation(RelationDef::new(
            "provider_info",
            Schema::of(
                &[
                    ("id", ColumnType::Int),
                    ("risk", ColumnType::Float),
                    ("fresh", ColumnType::Bool),
                ],
                &["id"],
            ),
        ))
        .with_relation(RelationDef::new(
            "orders",
            Schema::of(
                &[
                    ("order_id", ColumnType::Int),
                    ("wallet", ColumnType::Int),
                    ("value", ColumnType::Float),
                    ("settled", ColumnType::Bool),
                ],
                &["order_id"],
            ),
        ))
        // Single-row cursor over the order log: the next order id to assign
        // and the id below which every order is settled. Order ids are
        // assigned densely, so `[settled_upto, next_order)` is exactly the
        // unsettled window and every order query is a bounded scan instead
        // of a full-table pass.
        .with_relation(RelationDef::new(
            "order_seq",
            Schema::of(
                &[
                    ("id", ColumnType::Int),
                    ("next_order", ColumnType::Int),
                    ("settled_upto", ColumnType::Int),
                ],
                &["id"],
            ),
        ))
        .with_procedure("calc_risk", |ctx, args| {
            // args: [p_exposure limit, sim_risk work units]
            let p_exposure = args[0].as_float();
            let work = args[1].as_int() as u64;
            // Exposure = value of the unsettled window, a bounded scan over
            // [settled_upto, next_order) rather than the whole order log.
            let seq = ctx.get_expected("order_seq", &Key::Int(0))?;
            let settled_upto = seq.at(2).as_int();
            let exposure = ctx.sum_bounded("orders", Key::Int(settled_upto).., "value", |t| {
                t.at(3) == &Value::Bool(false)
            })?;
            if exposure > p_exposure {
                return ctx.abort("provider exposure limit exceeded");
            }
            let info = ctx.get_expected("provider_info", &Key::Int(0))?;
            let mut risk = info.at(1).as_float();
            if !info.at(2).as_bool() {
                // Stale risk figure: recompute it (the expensive sim_risk).
                ctx.busy_work(work);
                risk = exposure * 0.1;
                ctx.update(
                    "provider_info",
                    Tuple::of([Value::Int(0), Value::Float(risk), Value::Bool(true)]),
                )?;
            }
            Ok(Value::Float(risk))
        })
        .with_procedure("add_entry", |ctx, args| {
            // args: [wallet, value]. The next order id comes from the
            // order_seq cursor — an O(log n) read-modify-write instead of
            // the seed's O(n) count-the-table scan per new order. The
            // node-set protocol keeps this phantom-safe either way; the
            // cursor makes it cheap.
            let seq = ctx.update_with("order_seq", &Key::Int(0), |t| {
                let next = t.at(1).as_int();
                t.values_mut()[1] = Value::Int(next + 1);
            })?;
            let next = seq.at(1).as_int() - 1;
            ctx.insert(
                "orders",
                Tuple::of([
                    Value::Int(next),
                    Value::Int(args[0].as_int()),
                    Value::Float(args[1].as_float()),
                    Value::Bool(false),
                ]),
            )?;
            Ok(Value::Int(next))
        })
        .with_procedure("settle_window", |ctx, args| {
            // Settles the oldest `n` unsettled orders — a bounded scan over
            // the head of the unsettled window, advancing the settled
            // watermark, as in Appendix G's setup.
            let n = args[0].as_int();
            let seq = ctx.get_expected("order_seq", &Key::Int(0))?;
            let next = seq.at(1).as_int();
            let upto = seq.at(2).as_int();
            let window_end = (upto + n).min(next);
            let window = ctx.scan_bounded("orders", Key::Int(upto)..Key::Int(window_end))?;
            let mut settled = 0i64;
            for (_key, row) in window {
                if row.at(3) == &Value::Bool(true) {
                    continue;
                }
                let mut image = row.clone();
                image.values_mut()[3] = Value::Bool(true);
                ctx.update("orders", image)?;
                settled += 1;
            }
            ctx.update_with("order_seq", &Key::Int(0), |t| {
                t.values_mut()[2] = Value::Int(window_end);
            })?;
            ctx.update_with("provider_info", &Key::Int(0), |t| {
                t.values_mut()[2] = Value::Bool(false);
            })?;
            Ok(Value::Int(settled))
        });

    let exchange = ReactorType::new("Exchange")
        .with_relation(RelationDef::new(
            "settlement_risk",
            Schema::of(
                &[
                    ("id", ColumnType::Int),
                    ("p_exposure", ColumnType::Float),
                    ("g_risk", ColumnType::Float),
                ],
                &["id"],
            ),
        ))
        .with_relation(RelationDef::new(
            "provider_names",
            Schema::of(&[("value", ColumnType::Str)], &["value"]),
        ))
        .with_procedure("auth_pay", |ctx, args| {
            // args: [provider name, wallet, value, sim_risk work units]
            // The reactor-model formulation of Figure 1(b): calc_risk is
            // invoked asynchronously on every provider reactor.
            let pprovider = args[0].as_str().to_owned();
            let pwallet = args[1].as_int();
            let pvalue = args[2].as_float();
            let work = args[3].as_int();

            let limits = ctx.get_expected("settlement_risk", &Key::Int(0))?;
            let p_exposure = limits.at(1).as_float();
            let g_risk = limits.at(2).as_float();

            let providers: Vec<String> = ctx
                .scan("provider_names")?
                .into_iter()
                .map(|(_, t)| t.at(0).as_str().to_owned())
                .collect();
            let mut results = Vec::with_capacity(providers.len());
            for p in &providers {
                results.push(ctx.call(
                    p,
                    "calc_risk",
                    vec![Value::Float(p_exposure), Value::Int(work)],
                )?);
            }
            let mut total_risk = 0.0;
            for res in results {
                total_risk += res.get()?.as_float();
            }
            if total_risk + pvalue < g_risk {
                ctx.call(
                    &pprovider,
                    "add_entry",
                    vec![Value::Int(pwallet), Value::Float(pvalue)],
                )?;
                Ok(Value::Bool(true))
            } else {
                ctx.abort("global risk limit exceeded")
            }
        });

    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(provider);
    spec.add_type(exchange);
    spec.add_reactor(EXCHANGE, "Exchange");
    for p in 0..providers {
        spec.add_reactor(provider_name(p), "Provider");
    }
    spec
}

/// Loads the exchange database: risk limits on the exchange, provider names,
/// and `orders_per_provider` unsettled orders per provider.
pub fn load(
    db: &ReactDB,
    providers: usize,
    orders_per_provider: usize,
    p_exposure: f64,
    g_risk: f64,
) -> Result<()> {
    db.load_row(
        EXCHANGE,
        "settlement_risk",
        Tuple::of([
            Value::Int(0),
            Value::Float(p_exposure),
            Value::Float(g_risk),
        ]),
    )?;
    for p in 0..providers {
        let name = provider_name(p);
        db.load_row(
            EXCHANGE,
            "provider_names",
            Tuple::of([Value::Str(name.clone())]),
        )?;
        db.load_row(
            &name,
            "provider_info",
            Tuple::of([Value::Int(0), Value::Float(0.0), Value::Bool(false)]),
        )?;
        db.load_row(
            &name,
            "order_seq",
            Tuple::of([
                Value::Int(0),
                Value::Int(orders_per_provider as i64),
                Value::Int(0),
            ]),
        )?;
        for o in 0..orders_per_provider {
            db.load_row(
                &name,
                "orders",
                Tuple::of([
                    Value::Int(o as i64),
                    Value::Int((o % 97) as i64),
                    Value::Float(1.0),
                    Value::Bool(false),
                ]),
            )?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Simulator profiles for Figure 19.
// ---------------------------------------------------------------------------

/// Per-operation costs of the exchange workload in the simulator (µs).
#[derive(Debug, Clone, Copy)]
pub struct ExchangeSimCosts {
    /// Scanning one provider's order window (the join fragment).
    pub scan_window_us: f64,
    /// Fixed auth_pay bookkeeping on the exchange.
    pub auth_base_us: f64,
    /// The sim_risk computation per provider, derived from the random-number
    /// count of Figure 19's x axis.
    pub sim_risk_us: f64,
}

/// Builds the simulator profile of one `auth_pay` under a strategy, with
/// `providers` provider reactors. Reactor 0 is the exchange; providers are
/// reactors `1..=providers`.
pub fn sim_profile(strategy: Strategy, providers: usize, costs: ExchangeSimCosts) -> SimTxn {
    let per_provider = costs.scan_window_us + costs.sim_risk_us;
    match strategy {
        Strategy::Sequential => {
            // Everything on the exchange reactor.
            SimTxn::leaf(0, costs.auth_base_us + providers as f64 * per_provider)
        }
        Strategy::QueryParallelism => {
            // The scan/join is parallelised over provider partitions, but
            // every sim_risk still runs on the exchange.
            let mut txn =
                SimTxn::leaf(0, costs.auth_base_us + providers as f64 * costs.sim_risk_us);
            for p in 1..=providers {
                txn = txn.with_async(SimTxn::leaf(p, costs.scan_window_us));
            }
            txn
        }
        Strategy::ProcedureParallelism => {
            // calc_risk (scan + sim_risk) runs on each provider reactor.
            let mut txn = SimTxn::leaf(0, costs.auth_base_us);
            for p in 1..=providers {
                txn = txn.with_async(SimTxn::leaf(p, per_provider));
            }
            txn
        }
    }
}

/// Simulator workload for Figure 19: a single worker issuing `auth_pay`
/// transactions under a fixed strategy and sim_risk load.
#[derive(Debug, Clone)]
pub struct ExchangeSimWorkload {
    /// Strategy under test.
    pub strategy: Strategy,
    /// Number of provider reactors (15 in Appendix G).
    pub providers: usize,
    /// Cost calibration.
    pub costs: ExchangeSimCosts,
}

impl reactdb_sim::SimWorkload for ExchangeSimWorkload {
    fn next_txn(&mut self, _worker: usize, _rng: &mut StdRng) -> SimTxn {
        sim_profile(self.strategy, self.providers, self.costs)
    }
}

/// Builds an `auth_pay` invocation against the engine for a random provider
/// and wallet.
pub fn auth_pay_invocation(providers: usize, work_units: u64, rng: &mut StdRng) -> Vec<Value> {
    vec![
        Value::Str(provider_name(rng.gen_range(0..providers))),
        Value::Int(rng.gen_range(0..1000)),
        Value::Float(rng.gen_range(1.0..10.0)),
        Value::Int(work_units as i64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use reactdb_common::DeploymentConfig;
    use reactdb_common::TxnError;

    fn boot(providers: usize, orders: usize, g_risk: f64) -> ReactDB {
        let db = ReactDB::boot(
            spec(providers),
            DeploymentConfig::shared_nothing(providers + 1),
        );
        load(&db, providers, orders, 1_000.0, g_risk).unwrap();
        db
    }

    #[test]
    fn auth_pay_accepts_within_risk_and_records_the_order() {
        let db = boot(3, 10, 100.0);
        let client = db.client();
        let mut rng = StdRng::seed_from_u64(1);
        let args = auth_pay_invocation(3, 10, &mut rng);
        let provider = args[0].as_str().to_owned();
        let before = db.table(&provider, "orders").unwrap().visible_len();
        let accepted = client.invoke(EXCHANGE, "auth_pay", args).unwrap();
        assert_eq!(accepted, Value::Bool(true));
        assert_eq!(
            db.table(&provider, "orders").unwrap().visible_len(),
            before + 1
        );
        // Risk figures were cached on every provider.
        for p in 0..3 {
            let info = db
                .table(&provider_name(p), "provider_info")
                .unwrap()
                .get(&Key::Int(0))
                .unwrap();
            assert_eq!(info.read_unguarded().at(2), &Value::Bool(true));
        }
    }

    #[test]
    fn auth_pay_rejects_when_global_risk_exceeded() {
        // Each provider has 10 unsettled orders of value 1.0 → exposure 10,
        // risk 1.0 per provider, total 3.0; a tiny g_risk forces rejection.
        let db = boot(3, 10, 0.5);
        let err = db
            .invoke(
                EXCHANGE,
                "auth_pay",
                vec![
                    Value::Str(provider_name(0)),
                    Value::Int(1),
                    Value::Float(5.0),
                    Value::Int(1),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, TxnError::UserAbort(_)));
        // The rejected payment left no order behind.
        assert_eq!(
            db.table(&provider_name(0), "orders").unwrap().visible_len(),
            10
        );
    }

    #[test]
    fn provider_exposure_limit_aborts_the_payment() {
        let db = ReactDB::boot(spec(2), DeploymentConfig::shared_nothing(3));
        // p_exposure of 5 but 10 unsettled orders of value 1.0 → abort.
        load(&db, 2, 10, 5.0, 1_000.0).unwrap();
        let err = db
            .invoke(
                EXCHANGE,
                "auth_pay",
                vec![
                    Value::Str(provider_name(1)),
                    Value::Int(1),
                    Value::Float(1.0),
                    Value::Int(1),
                ],
            )
            .unwrap_err();
        assert!(err.is_user_abort());
    }

    #[test]
    fn add_entry_assigns_dense_ids_from_the_cursor() {
        let db = boot(1, 10, 1_000.0);
        let p = provider_name(0);
        // Three direct entries: ids continue densely after the loaded ones,
        // with no table-length scan involved.
        for expect in 10..13i64 {
            let id = db
                .invoke(&p, "add_entry", vec![Value::Int(1), Value::Float(1.0)])
                .unwrap();
            assert_eq!(id, Value::Int(expect));
        }
        assert_eq!(db.table(&p, "orders").unwrap().visible_len(), 13);
        // The cursor row tracks the high-water mark.
        let seq = db
            .table(&p, "order_seq")
            .unwrap()
            .get(&Key::Int(0))
            .unwrap()
            .read_unguarded();
        assert_eq!(seq.at(1), &Value::Int(13));
    }

    #[test]
    fn settle_window_marks_orders_and_invalidates_risk_cache() {
        let db = boot(1, 10, 100.0);
        db.invoke(
            EXCHANGE,
            "auth_pay",
            vec![
                Value::Str(provider_name(0)),
                Value::Int(1),
                Value::Float(1.0),
                Value::Int(1),
            ],
        )
        .unwrap();
        db.invoke(&provider_name(0), "settle_window", vec![Value::Int(5)])
            .unwrap();
        let unsettled = db
            .table(&provider_name(0), "orders")
            .unwrap()
            .scan()
            .iter()
            .filter(|(_, r)| r.is_visible() && r.read_unguarded().at(3) == &Value::Bool(false))
            .count();
        assert_eq!(unsettled, 11 - 5);
        let info = db
            .table(&provider_name(0), "provider_info")
            .unwrap()
            .get(&Key::Int(0))
            .unwrap();
        assert_eq!(info.read_unguarded().at(2), &Value::Bool(false));
    }

    #[test]
    fn sim_profiles_rank_strategies_as_in_figure_19() {
        use reactdb_sim::{SimCosts, SimDeployment, SimStrategy, Simulator};
        let costs = ExchangeSimCosts {
            scan_window_us: 50.0,
            auth_base_us: 5.0,
            sim_risk_us: 500.0,
        };
        let deployment = SimDeployment::striped(SimStrategy::SharedNothing, 16, 16);
        let latency = |strategy| {
            let sim = Simulator::new(deployment.clone(), SimCosts::default());
            let mut wl = ExchangeSimWorkload {
                strategy,
                providers: 15,
                costs,
            };
            sim.run(&mut wl, 1, 10, 1).avg_latency_us()
        };
        let sequential = latency(Strategy::Sequential);
        let query = latency(Strategy::QueryParallelism);
        let procedure = latency(Strategy::ProcedureParallelism);
        assert!(procedure < query);
        assert!(query < sequential);
        // At heavy sim_risk load the procedure-parallel variant wins by a
        // large factor (the paper reports ~8x).
        assert!(sequential / procedure > 5.0);
    }
}
