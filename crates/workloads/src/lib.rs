//! OLTP benchmark workloads expressed in the reactor programming model.
//!
//! Each workload provides three artefacts, built from the same parameters:
//!
//! 1. a [`reactdb_core::ReactorDatabaseSpec`] with reactor types, relation
//!    schemas and stored procedures, plus a loader, for execution on the
//!    real engine (`reactdb-engine`);
//! 2. transaction-profile generators ([`reactdb_sim::SimTxn`]) for the
//!    virtual-time simulator that reproduces the paper's figures;
//! 3. fork-join cost-model shapes ([`reactdb_core::costmodel::ForkJoinTxn`])
//!    for the predicted curves of Figures 6 and 13 and Table 1.
//!
//! Workloads:
//!
//! * [`smallbank`] — the extended Smallbank benchmark with the
//!   multi-transfer transaction and its four program formulations
//!   (§4.1.3–4.1.4, Appendix H),
//! * [`tpcc`] — TPC-C with one warehouse reactor per warehouse, the standard
//!   mix, the cross-reactor probability knob and the new-order-delay variant
//!   (§4.3, Appendices D–F),
//! * [`ycsb`] — YCSB extended with the `multi_update` transaction over
//!   key-reactors and zipfian skew (Appendix C),
//! * [`exchange`] — the digital currency exchange of Figure 1 with the
//!   sequential, query-parallelism and procedure-parallelism strategies
//!   (Appendix G).

pub mod exchange;
pub mod smallbank;
pub mod tpcc;
pub mod ycsb;
