//! Relation schemas encapsulated by reactors.
//!
//! A reactor type determines "the relation schemas encapsulated in the
//! reactor state" (§2.2.1). A [`Schema`] is an ordered list of named,
//! typed columns plus the positions of the primary-key columns.

use reactdb_common::{TxnError, Value};
use serde::{Deserialize, Serialize};

/// Column data types. The storage layer is dynamically typed ([`Value`]);
/// the declared type is used for validation at insert time and for
/// documentation of the benchmark schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// True if `value` is admissible for a column of this type. NULL is
    /// admissible for every type.
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns with designated primary-key columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
    key_positions: Vec<usize>,
}

impl Schema {
    /// Builds a schema. `key_columns` name the primary-key columns in key
    /// order; they must all exist in `columns`.
    ///
    /// # Panics
    /// Panics if a key column is not present or if column names repeat;
    /// schemas are static program data, so this is a programming error.
    pub fn new(columns: Vec<Column>, key_columns: &[&str]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(
                seen.insert(c.name.clone()),
                "duplicate column name {}",
                c.name
            );
        }
        let key_positions = key_columns
            .iter()
            .map(|k| {
                columns
                    .iter()
                    .position(|c| c.name == *k)
                    .unwrap_or_else(|| panic!("key column {k} not in schema"))
            })
            .collect();
        Self {
            columns,
            key_positions,
        }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, ColumnType)], key_columns: &[&str]) -> Self {
        Self::new(
            cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
            key_columns,
        )
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Positions of the primary-key columns.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Resolves a column name to its position.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Resolves a column name to its position, reporting a transaction
    /// error mentioning `relation` when it does not exist.
    pub fn require(&self, relation: &str, name: &str) -> Result<usize, TxnError> {
        self.position_of(name)
            .ok_or_else(|| TxnError::UnknownColumn {
                relation: relation.to_owned(),
                column: name.to_owned(),
            })
    }

    /// Validates a row against the schema: arity and column types.
    pub fn validate(&self, relation: &str, values: &[Value]) -> Result<(), TxnError> {
        if values.len() != self.columns.len() {
            return Err(TxnError::BadArguments(format!(
                "relation {relation} expects {} columns, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        for (col, val) in self.columns.iter().zip(values) {
            if !col.ty.admits(val) {
                return Err(TxnError::BadArguments(format!(
                    "column {}.{} of type {:?} cannot hold {val:?}",
                    relation, col.name, col.ty
                )));
            }
        }
        Ok(())
    }
}

/// The definition of one relation inside a reactor type: its name, schema and
/// secondary indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationDef {
    /// Relation name, unique within the reactor type.
    pub name: String,
    /// Relation schema.
    pub schema: Schema,
    /// Secondary indexes, each over a list of column names.
    pub secondary_indexes: Vec<Vec<String>>,
}

impl RelationDef {
    /// Creates a relation definition without secondary indexes.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            secondary_indexes: Vec::new(),
        }
    }

    /// Adds a secondary index over the named columns.
    pub fn with_index(mut self, columns: &[&str]) -> Self {
        self.secondary_indexes
            .push(columns.iter().map(|c| (*c).to_owned()).collect());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account_schema() -> Schema {
        Schema::of(
            &[
                ("name", ColumnType::Str),
                ("cust_id", ColumnType::Int),
                ("balance", ColumnType::Float),
            ],
            &["name"],
        )
    }

    #[test]
    fn schema_positions_and_keys() {
        let s = account_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position_of("balance"), Some(2));
        assert_eq!(s.position_of("missing"), None);
        assert_eq!(s.key_positions(), &[0]);
    }

    #[test]
    fn require_reports_relation_and_column() {
        let s = account_schema();
        let err = s.require("account", "nope").unwrap_err();
        assert!(matches!(err, TxnError::UnknownColumn { relation, column }
            if relation == "account" && column == "nope"));
    }

    #[test]
    fn validation_checks_arity_and_types() {
        let s = account_schema();
        assert!(s
            .validate("account", &["bob".into(), 1i64.into(), 10.5f64.into()])
            .is_ok());
        // Int admissible in Float column.
        assert!(s
            .validate("account", &["bob".into(), 1i64.into(), 10i64.into()])
            .is_ok());
        // NULL admissible anywhere.
        assert!(s
            .validate("account", &[Value::Null, Value::Null, Value::Null])
            .is_ok());
        assert!(s.validate("account", &["bob".into(), 1i64.into()]).is_err());
        assert!(s
            .validate("account", &["bob".into(), "oops".into(), 10.5f64.into()])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "key column")]
    fn unknown_key_column_panics() {
        Schema::of(&[("a", ColumnType::Int)], &["b"]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        Schema::of(&[("a", ColumnType::Int), ("a", ColumnType::Int)], &["a"]);
    }

    #[test]
    fn relation_def_with_indexes() {
        let def = RelationDef::new("customer", account_schema()).with_index(&["cust_id"]);
        assert_eq!(def.secondary_indexes.len(), 1);
        assert_eq!(def.secondary_indexes[0], vec!["cust_id".to_owned()]);
    }
}
