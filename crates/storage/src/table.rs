//! Tables: an ordered primary index over records plus optional secondary
//! indexes.
//!
//! A table stores the rows of one relation of one reactor. The primary index
//! is an ordered map from primary [`Key`] to [`RecordRef`]; secondary indexes
//! map an index key to the set of primary keys currently carrying that
//! value. All physical operations here are non-transactional — visibility
//! and atomicity are the responsibility of the OCC layer, which holds
//! [`RecordRef`] handles obtained from this table in its read and write
//! sets.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;
use reactdb_common::{Key, ReactorId, Result, TxnError};

use crate::record::{Record, RecordRef};
use crate::schema::Schema;
use crate::tid::TidWord;
use crate::tuple::Tuple;

/// Definition of a secondary index: the positions of the indexed columns in
/// the table schema.
#[derive(Debug, Clone, Default)]
pub struct SecondaryIndexDef {
    /// Human-readable name (derived from the column list).
    pub name: String,
    /// Column positions forming the index key, in order.
    pub positions: Vec<usize>,
}

#[derive(Debug, Default)]
struct SecondaryIndex {
    def: SecondaryIndexDef,
    map: RwLock<BTreeMap<Key, BTreeSet<Key>>>,
}

/// A relation instance: schema + primary index + secondary indexes.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Reactor whose state this relation instance belongs to. Defaults to
    /// reactor 0 for tables created outside a partition (unit tests); the
    /// durability layer uses it to address redo records.
    owner: ReactorId,
    primary: RwLock<BTreeMap<Key, RecordRef>>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            owner: ReactorId(0),
            primary: RwLock::new(BTreeMap::new()),
            secondary: Vec::new(),
        }
    }

    /// Creates an empty table with secondary indexes over the named column
    /// lists.
    ///
    /// # Panics
    /// Panics if an indexed column does not exist in the schema.
    pub fn with_indexes(
        name: impl Into<String>,
        schema: Schema,
        secondary: &[Vec<String>],
    ) -> Self {
        let name = name.into();
        let mut indexes = Vec::with_capacity(secondary.len());
        for cols in secondary {
            let positions: Vec<usize> = cols
                .iter()
                .map(|c| {
                    schema
                        .position_of(c)
                        .unwrap_or_else(|| panic!("indexed column {c} not in {name}"))
                })
                .collect();
            indexes.push(SecondaryIndex {
                def: SecondaryIndexDef {
                    name: cols.join("+"),
                    positions,
                },
                map: RwLock::new(BTreeMap::new()),
            });
        }
        Self {
            name,
            schema,
            owner: ReactorId(0),
            primary: RwLock::new(BTreeMap::new()),
            secondary: indexes,
        }
    }

    /// Sets the owning reactor (builder style; used by
    /// [`crate::Partition::create_reactor`]).
    pub fn with_owner(mut self, owner: ReactorId) -> Self {
        self.owner = owner;
        self
    }

    /// Reactor whose state this relation instance belongs to.
    pub fn owner(&self) -> ReactorId {
        self.owner
    }

    /// Table (relation) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Definitions of the secondary indexes.
    pub fn secondary_defs(&self) -> Vec<SecondaryIndexDef> {
        self.secondary.iter().map(|s| s.def.clone()).collect()
    }

    /// Number of records physically present in the primary index (including
    /// absent/deleted slots).
    pub fn physical_len(&self) -> usize {
        self.primary.read().len()
    }

    /// Number of visible rows.
    pub fn visible_len(&self) -> usize {
        self.primary
            .read()
            .values()
            .filter(|r| r.is_visible())
            .count()
    }

    /// Looks up the record slot for a primary key, visible or not.
    pub fn get(&self, key: &Key) -> Option<RecordRef> {
        self.primary.read().get(key).cloned()
    }

    /// Returns the record slot for `key`, creating an absent slot holding
    /// `provisional` if none exists. The boolean is `true` when a new slot
    /// was created. Used by transactional inserts: the slot only becomes
    /// visible when the transaction commits.
    pub fn get_or_create(&self, key: Key, provisional: Tuple) -> (RecordRef, bool) {
        {
            let read = self.primary.read();
            if let Some(existing) = read.get(&key) {
                return (Arc::clone(existing), false);
            }
        }
        let mut write = self.primary.write();
        if let Some(existing) = write.get(&key) {
            return (Arc::clone(existing), false);
        }
        let record = Record::new_absent(provisional);
        write.insert(key, Arc::clone(&record));
        (record, true)
    }

    /// Non-transactional bulk load of one row (used by benchmark loaders
    /// before measurement starts). Maintains secondary indexes.
    pub fn load_row(&self, row: Tuple) -> Result<()> {
        self.load_row_with_tid(row, TidWord::committed(0, 0))
    }

    /// Like [`Table::load_row`] but installs the row under a caller-chosen
    /// version. The durability layer uses this so the physical TID matches
    /// the logged TID: any later commit touching the row then observes (and
    /// exceeds) it, which is what makes TID-ordered replay consistent with
    /// the conflict order.
    pub fn load_row_with_tid(&self, row: Tuple, tid: TidWord) -> Result<()> {
        self.schema.validate(&self.name, row.values())?;
        let key = row.primary_key(&self.schema);
        let mut primary = self.primary.write();
        if let Some(existing) = primary.get(&key) {
            if existing.is_visible() {
                return Err(TxnError::DuplicateKey {
                    relation: self.name.clone(),
                    key: key.to_string(),
                });
            }
        }
        let record = Record::new_loaded(row.clone(), tid);
        primary.insert(key.clone(), record);
        drop(primary);
        self.index_insert(&key, &row);
        Ok(())
    }

    /// Visible rows in primary-key order within `[low, high]` bounds
    /// (unbounded when `None`). Returns cloned tuples with their keys and
    /// the record handles so the OCC layer can register reads.
    pub fn range(&self, low: Bound<&Key>, high: Bound<&Key>) -> Vec<(Key, RecordRef)> {
        let primary = self.primary.read();
        primary
            .range((low.cloned(), high.cloned()))
            .map(|(k, r)| (k.clone(), Arc::clone(r)))
            .collect()
    }

    /// All record slots in primary-key order.
    pub fn scan(&self) -> Vec<(Key, RecordRef)> {
        let primary = self.primary.read();
        primary
            .iter()
            .map(|(k, r)| (k.clone(), Arc::clone(r)))
            .collect()
    }

    /// Primary keys currently associated with `index_key` in secondary index
    /// `index_id`.
    ///
    /// # Panics
    /// Panics when `index_id` is out of range.
    pub fn secondary_lookup(&self, index_id: usize, index_key: &Key) -> Vec<Key> {
        let idx = &self.secondary[index_id];
        idx.map
            .read()
            .get(index_key)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Range lookup on a secondary index: all `(index key, primary key)`
    /// pairs within the bounds, in index order.
    pub fn secondary_range(
        &self,
        index_id: usize,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> Vec<(Key, Key)> {
        let idx = &self.secondary[index_id];
        let map = idx.map.read();
        map.range((low.cloned(), high.cloned()))
            .flat_map(|(ik, pks)| pks.iter().map(move |pk| (ik.clone(), pk.clone())))
            .collect()
    }

    /// Applies one redo record during crash recovery: installs `image` (or a
    /// logical delete when `None`) at `key` with the recorded commit TID,
    /// maintaining secondary indexes. Recovery replays records in TID order
    /// on a database that is not yet accepting transactions, so the record
    /// lock is only held to satisfy the install protocol.
    pub fn replay(&self, key: &Key, image: Option<&Tuple>, tid: TidWord) {
        match image {
            Some(row) => {
                let (record, _created) = self.get_or_create(key.clone(), row.clone());
                let was_visible = record.is_visible();
                let before = record.read_unguarded();
                record.lock();
                record.install(row.clone(), tid);
                if was_visible {
                    self.index_update(key, &before, row);
                } else {
                    self.index_insert(key, row);
                }
            }
            None => {
                // The slot exists whenever the matching insert was replayed;
                // epoch-prefix durability guarantees that, because the insert
                // committed in an epoch no later than the delete's.
                if let Some(record) = self.get(key) {
                    if record.is_visible() {
                        self.index_remove(key, &record.read_unguarded());
                    }
                    record.lock();
                    record.install_delete(tid);
                }
            }
        }
    }

    /// Registers `row` (with primary key `pk`) in every secondary index.
    /// Called by the commit write phase after installing an insert, and by
    /// the bulk loader.
    pub fn index_insert(&self, pk: &Key, row: &Tuple) {
        for idx in &self.secondary {
            if let Some(ik) = row.index_key(&idx.def.positions) {
                idx.map.write().entry(ik).or_default().insert(pk.clone());
            }
        }
    }

    /// Removes `row`'s entries from every secondary index (commit write
    /// phase of deletes, or index maintenance when an update changes indexed
    /// columns).
    pub fn index_remove(&self, pk: &Key, row: &Tuple) {
        for idx in &self.secondary {
            if let Some(ik) = row.index_key(&idx.def.positions) {
                let mut map = idx.map.write();
                if let Some(set) = map.get_mut(&ik) {
                    set.remove(pk);
                    if set.is_empty() {
                        map.remove(&ik);
                    }
                }
            }
        }
    }

    /// Updates secondary indexes when a row changes from `old` to `new`.
    pub fn index_update(&self, pk: &Key, old: &Tuple, new: &Tuple) {
        for idx in &self.secondary {
            let old_key = old.index_key(&idx.def.positions);
            let new_key = new.index_key(&idx.def.positions);
            if old_key == new_key {
                continue;
            }
            let mut map = idx.map.write();
            if let Some(ok) = old_key {
                if let Some(set) = map.get_mut(&ok) {
                    set.remove(pk);
                    if set.is_empty() {
                        map.remove(&ok);
                    }
                }
            }
            if let Some(nk) = new_key {
                map.entry(nk).or_default().insert(pk.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use reactdb_common::Value;

    fn customer_table() -> Table {
        let schema = Schema::of(
            &[
                ("c_id", ColumnType::Int),
                ("c_last", ColumnType::Str),
                ("c_balance", ColumnType::Float),
            ],
            &["c_id"],
        );
        Table::with_indexes("customer", schema, &[vec!["c_last".to_owned()]])
    }

    fn row(id: i64, last: &str, bal: f64) -> Tuple {
        Tuple::of([Value::Int(id), Value::Str(last.into()), Value::Float(bal)])
    }

    #[test]
    fn load_and_point_lookup() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        t.load_row(row(2, "JONES", 20.0)).unwrap();
        assert_eq!(t.visible_len(), 2);
        let rec = t.get(&Key::Int(1)).unwrap();
        assert_eq!(
            rec.read_unguarded().get(t.schema(), "c_last"),
            &Value::Str("SMITH".into())
        );
        assert!(t.get(&Key::Int(99)).is_none());
    }

    #[test]
    fn duplicate_load_is_rejected() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        let err = t.load_row(row(1, "SMITH", 10.0)).unwrap_err();
        assert!(matches!(err, TxnError::DuplicateKey { .. }));
    }

    #[test]
    fn schema_violation_rejected_at_load() {
        let t = customer_table();
        let bad = Tuple::of([
            Value::Str("not an id".into()),
            Value::Str("X".into()),
            Value::Float(0.0),
        ]);
        assert!(t.load_row(bad).is_err());
    }

    #[test]
    fn range_scan_in_key_order() {
        let t = customer_table();
        for i in (1..=5).rev() {
            t.load_row(row(i, "L", i as f64)).unwrap();
        }
        let hits = t.range(Bound::Included(&Key::Int(2)), Bound::Included(&Key::Int(4)));
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![Key::Int(2), Key::Int(3), Key::Int(4)]);
        let all = t.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn secondary_index_lookup_and_update() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        t.load_row(row(2, "SMITH", 20.0)).unwrap();
        t.load_row(row(3, "JONES", 30.0)).unwrap();
        let smiths = t.secondary_lookup(0, &Key::Str("SMITH".into()));
        assert_eq!(smiths, vec![Key::Int(1), Key::Int(2)]);

        // Simulate an update changing the indexed column.
        let old = row(2, "SMITH", 20.0);
        let new = row(2, "BROWN", 20.0);
        t.index_update(&Key::Int(2), &old, &new);
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("SMITH".into())),
            vec![Key::Int(1)]
        );
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("BROWN".into())),
            vec![Key::Int(2)]
        );

        t.index_remove(&Key::Int(3), &row(3, "JONES", 30.0));
        assert!(t.secondary_lookup(0, &Key::Str("JONES".into())).is_empty());
    }

    #[test]
    fn secondary_range_returns_pairs_in_order() {
        let t = customer_table();
        t.load_row(row(1, "ADAMS", 1.0)).unwrap();
        t.load_row(row(2, "BAKER", 2.0)).unwrap();
        t.load_row(row(3, "CLARK", 3.0)).unwrap();
        let hits = t.secondary_range(
            0,
            Bound::Included(&Key::Str("ADAMS".into())),
            Bound::Included(&Key::Str("BAKER".into())),
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, Key::Str("ADAMS".into()));
        assert_eq!(hits[1].1, Key::Int(2));
    }

    #[test]
    fn get_or_create_returns_same_slot() {
        let t = customer_table();
        let (a, created_a) = t.get_or_create(Key::Int(7), row(7, "NEW", 0.0));
        let (b, created_b) = t.get_or_create(Key::Int(7), row(7, "NEW", 0.0));
        assert!(created_a);
        assert!(!created_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_visible());
        assert_eq!(t.physical_len(), 1);
        assert_eq!(t.visible_len(), 0);
    }

    #[test]
    #[should_panic(expected = "indexed column")]
    fn unknown_indexed_column_panics() {
        let schema = Schema::of(&[("a", ColumnType::Int)], &["a"]);
        Table::with_indexes("t", schema, &[vec!["missing".to_owned()]]);
    }
}
