//! Tables: a versioned ordered primary index over records plus optional
//! secondary indexes.
//!
//! A table stores the rows of one relation of one reactor. The primary index
//! is a [`VersionedIndex`] from primary [`Key`] to [`RecordRef`]; secondary
//! indexes map an index key to the set of primary keys currently carrying
//! that value, on the same versioned substrate. All physical operations here
//! are non-transactional — visibility and atomicity are the responsibility
//! of the OCC layer, which holds [`RecordRef`] handles obtained from this
//! table in its read and write sets, and [`NodeObservation`]s from its
//! traversals in its node set (phantom protection; see the `index` module).

use std::collections::BTreeSet;
use std::ops::Bound;

use reactdb_common::{Key, ReactorId, Result, TxnError};

use crate::index::{NodeBump, NodeObservation, UpdateOutcome, VersionedIndex};
use crate::record::{Record, RecordRef};
use crate::schema::Schema;
use crate::tid::TidWord;
use crate::tuple::{Tuple, TupleDelta};

/// Why a delta redo record could not be applied during recovery. Unlike a
/// torn log tail (expected after a crash, silently discarded), a delta whose
/// base image is missing or mismatched means the chain invariant was broken
/// — replaying it would produce silently wrong state, so recovery surfaces
/// the corruption instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The delta's base row is not present (or was deleted): the chain's
    /// root full image is gone.
    MissingBase {
        /// Relation the record addressed.
        relation: String,
        /// Primary key of the row.
        key: String,
        /// Commit TID of the unapplicable delta.
        tid: TidWord,
    },
    /// The slot holds a version that is neither the delta's base nor newer
    /// than the delta itself: an intermediate chain link is missing.
    BaseMismatch {
        /// Relation the record addressed.
        relation: String,
        /// Primary key of the row.
        key: String,
        /// Base version the delta was computed against.
        expected: TidWord,
        /// Version actually found in the slot.
        found: TidWord,
    },
    /// The base image's arity does not match the delta (schema drift or a
    /// cross-wired chain).
    ArityMismatch {
        /// Relation the record addressed.
        relation: String,
        /// Primary key of the row.
        key: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MissingBase { relation, key, tid } => write!(
                f,
                "delta redo record for {relation}[{key}] (tid {:?}) has no base image",
                tid
            ),
            ReplayError::BaseMismatch {
                relation,
                key,
                expected,
                found,
            } => write!(
                f,
                "delta redo record for {relation}[{key}] expects base {:#x} but the slot holds {:#x}",
                expected.raw(),
                found.raw()
            ),
            ReplayError::ArityMismatch { relation, key } => {
                write!(f, "delta redo record for {relation}[{key}] does not fit the base image's arity")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Definition of a secondary index: the positions of the indexed columns in
/// the table schema.
#[derive(Debug, Clone, Default)]
pub struct SecondaryIndexDef {
    /// Human-readable name (derived from the column list).
    pub name: String,
    /// Column positions forming the index key, in order.
    pub positions: Vec<usize>,
}

#[derive(Debug)]
struct SecondaryIndex {
    def: SecondaryIndexDef,
    map: VersionedIndex<BTreeSet<Key>>,
}

/// What a [`Table::membership_fence`] did: the node bumps to refresh the
/// committing transaction's own node set with, and the provisional
/// secondary-index additions to undo via [`Table::fence_rollback`] if
/// validation fails. Entries are `(secondary index id, index key)`.
#[derive(Debug, Default)]
pub struct FenceEffect {
    /// Version bumps performed (primary + secondary).
    pub bumps: Vec<NodeBump>,
    /// Provisional `(index id, index key)` pairs physically added for this
    /// write's primary key.
    pub added: Vec<(usize, Key)>,
}

/// One page of a [`Table::snapshot_chunk`] walk.
#[derive(Debug)]
pub struct SnapshotChunk {
    /// Visible rows in primary-key order, each with the commit TID its image
    /// corresponds to (version-stable capture).
    pub rows: Vec<(Key, TidWord, Tuple)>,
    /// Cursor for the next chunk; `None` when the walk is complete.
    pub next: Option<Key>,
}

/// A relation instance: schema + primary index + secondary indexes.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Reactor whose state this relation instance belongs to. Defaults to
    /// reactor 0 for tables created outside a partition (unit tests); the
    /// durability layer uses it to address redo records.
    owner: ReactorId,
    primary: VersionedIndex<RecordRef>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            owner: ReactorId(0),
            primary: VersionedIndex::new(),
            secondary: Vec::new(),
        }
    }

    /// Creates an empty table with secondary indexes over the named column
    /// lists.
    ///
    /// # Panics
    /// Panics if an indexed column does not exist in the schema.
    pub fn with_indexes(
        name: impl Into<String>,
        schema: Schema,
        secondary: &[Vec<String>],
    ) -> Self {
        let name = name.into();
        let mut indexes = Vec::with_capacity(secondary.len());
        for cols in secondary {
            let positions: Vec<usize> = cols
                .iter()
                .map(|c| {
                    schema
                        .position_of(c)
                        .unwrap_or_else(|| panic!("indexed column {c} not in {name}"))
                })
                .collect();
            indexes.push(SecondaryIndex {
                def: SecondaryIndexDef {
                    name: cols.join("+"),
                    positions,
                },
                map: VersionedIndex::new(),
            });
        }
        Self {
            name,
            schema,
            owner: ReactorId(0),
            primary: VersionedIndex::new(),
            secondary: indexes,
        }
    }

    /// Sets the owning reactor (builder style; used by
    /// [`crate::Partition::create_reactor`]).
    pub fn with_owner(mut self, owner: ReactorId) -> Self {
        self.owner = owner;
        self
    }

    /// Reactor whose state this relation instance belongs to.
    pub fn owner(&self) -> ReactorId {
        self.owner
    }

    /// Table (relation) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Definitions of the secondary indexes.
    pub fn secondary_defs(&self) -> Vec<SecondaryIndexDef> {
        self.secondary.iter().map(|s| s.def.clone()).collect()
    }

    /// Column positions forming the key of secondary index `index_id`.
    /// Used by the OCC layer to re-derive a row's index key when filtering
    /// lookup results against provisional or stale index entries.
    ///
    /// # Panics
    /// Panics when `index_id` is out of range.
    pub fn secondary_positions(&self, index_id: usize) -> Vec<usize> {
        self.secondary[index_id].def.positions.clone()
    }

    /// Number of leaf nodes the primary key space is split into (diagnostic;
    /// grows with the historical key count).
    pub fn primary_node_count(&self) -> usize {
        self.primary.node_count()
    }

    /// Number of records physically present in the primary index (including
    /// absent/deleted slots).
    pub fn physical_len(&self) -> usize {
        self.primary.len()
    }

    /// Number of visible rows.
    pub fn visible_len(&self) -> usize {
        self.primary.count_values(|r| r.is_visible())
    }

    /// Looks up the record slot for a primary key, visible or not.
    pub fn get(&self, key: &Key) -> Option<RecordRef> {
        self.primary.get_cloned(key)
    }

    /// Like [`Table::get`], but also returns the observation of the index
    /// node covering `key`. The OCC layer records the observation when the
    /// slot is absent, so a later insert of the key (a point phantom) is
    /// caught by node-set validation.
    pub fn get_observed(&self, key: &Key) -> (Option<RecordRef>, NodeObservation) {
        self.primary.get_observed(key)
    }

    /// Returns the record slot for `key`, creating an absent slot holding
    /// `provisional` if none exists. Slot creation is a structural mutation
    /// of the primary index: the covering node is bumped and the bump
    /// returned, so the creating transaction can refresh its own node set
    /// (its earlier scans of the node remain valid) while concurrent
    /// scanners of the range are invalidated. Used by transactional inserts;
    /// the slot only becomes visible when the transaction commits.
    pub fn get_or_create(&self, key: Key, provisional: Tuple) -> (RecordRef, Option<NodeBump>) {
        self.primary
            .get_or_insert_with(&key, || Record::new_absent(provisional))
    }

    /// Non-transactional bulk load of one row (used by benchmark loaders
    /// before measurement starts). Maintains secondary indexes.
    pub fn load_row(&self, row: Tuple) -> Result<()> {
        self.load_row_with_tid(row, TidWord::committed(0, 0))
    }

    /// Like [`Table::load_row`] but installs the row under a caller-chosen
    /// version. The durability layer uses this so the physical TID matches
    /// the logged TID: any later commit touching the row then observes (and
    /// exceeds) it, which is what makes TID-ordered replay consistent with
    /// the conflict order.
    pub fn load_row_with_tid(&self, row: Tuple, tid: TidWord) -> Result<()> {
        self.schema.validate(&self.name, row.values())?;
        let key = row.primary_key(&self.schema);
        let mut duplicate = false;
        self.primary.update_or_insert(
            &key,
            true,
            |slot| {
                if slot.is_visible() {
                    duplicate = true;
                    UpdateOutcome::Unchanged
                } else {
                    // Replace the invisible slot with a fresh loaded record;
                    // the handle swap is a membership change for observers.
                    *slot = Record::new_loaded(row.clone(), tid);
                    UpdateOutcome::Changed
                }
            },
            || Some(Record::new_loaded(row.clone(), tid)),
        );
        if duplicate {
            return Err(TxnError::DuplicateKey {
                relation: self.name.clone(),
                key: key.to_string(),
            });
        }
        self.index_insert(&key, &row);
        Ok(())
    }

    /// Record slots in primary-key order within `[low, high]` bounds
    /// (unbounded when `None`). Returns cloned keys with the record handles
    /// so the OCC layer can register reads.
    pub fn range(&self, low: Bound<&Key>, high: Bound<&Key>) -> Vec<(Key, RecordRef)> {
        self.primary.range_cloned(low, high)
    }

    /// Like [`Table::range`], but also returns an observation of every
    /// index node whose interval intersects the bounds — the scan set a
    /// phantom-safe transaction validates at commit.
    pub fn range_observed(
        &self,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> (Vec<(Key, RecordRef)>, Vec<NodeObservation>) {
        self.primary.range_observed(low, high)
    }

    /// All record slots in primary-key order.
    pub fn scan(&self) -> Vec<(Key, RecordRef)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// One chunk of a fuzzy checkpoint walk: up to `limit` *visible* rows
    /// with primary keys strictly after `after`, each captured with a
    /// version-stable read (the row copy is guaranteed to match its TID),
    /// plus the cursor to resume from (`None` once the table is exhausted).
    ///
    /// The index lock is held only while the chunk's slot handles are
    /// collected; the per-row stable reads run outside it, so concurrent
    /// commits are never blocked for longer than one chunk collection. The
    /// capture is *fuzzy*: different chunks (and different rows of one
    /// chunk) may reflect different commit epochs — consistency is restored
    /// at recovery by TID-aware replay of the log tail over the captured
    /// rows (see [`Table::replay`]).
    pub fn snapshot_chunk(&self, after: Option<&Key>, limit: usize) -> SnapshotChunk {
        let (slots, next) = self.primary.range_page(after, limit);
        let mut rows = Vec::with_capacity(slots.len());
        for (key, record) in slots {
            let (tid, image) = record.read_stable();
            if tid.is_absent() {
                continue; // deleted or not-yet-committed slot
            }
            rows.push((key, tid, image));
        }
        SnapshotChunk { rows, next }
    }

    /// Primary keys currently associated with `index_key` in secondary index
    /// `index_id`.
    ///
    /// # Panics
    /// Panics when `index_id` is out of range.
    pub fn secondary_lookup(&self, index_id: usize, index_key: &Key) -> Vec<Key> {
        self.secondary[index_id]
            .map
            .get_cloned(index_key)
            .map(|set| set.into_iter().collect())
            .unwrap_or_default()
    }

    /// Like [`Table::secondary_lookup`], plus the observation of the index
    /// node covering `index_key` — a later commit that adds or removes a
    /// matching `(index key, primary key)` pair bumps it.
    pub fn secondary_lookup_observed(
        &self,
        index_id: usize,
        index_key: &Key,
    ) -> (Vec<Key>, NodeObservation) {
        let (set, obs) = self.secondary[index_id].map.get_observed(index_key);
        (
            set.map(|s| s.into_iter().collect()).unwrap_or_default(),
            obs,
        )
    }

    /// Range lookup on a secondary index: all `(index key, primary key)`
    /// pairs within the bounds, in index order.
    pub fn secondary_range(
        &self,
        index_id: usize,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> Vec<(Key, Key)> {
        self.secondary[index_id]
            .map
            .range_cloned(low, high)
            .into_iter()
            .flat_map(|(ik, pks)| pks.into_iter().map(move |pk| (ik.clone(), pk)))
            .collect()
    }

    /// Like [`Table::secondary_range`], plus the node observations covering
    /// the scanned index-key interval.
    pub fn secondary_range_observed(
        &self,
        index_id: usize,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> (Vec<(Key, Key)>, Vec<NodeObservation>) {
        let (entries, obs) = self.secondary[index_id].map.range_observed(low, high);
        let pairs = entries
            .into_iter()
            .flat_map(|(ik, pks)| pks.into_iter().map(move |pk| (ik.clone(), pk)))
            .collect();
        (pairs, obs)
    }

    /// The commit path's membership fence, run after write locks are
    /// acquired and **before** validation. For every index node whose
    /// membership this write will change it does two things *atomically per
    /// node*:
    ///
    /// * **additions** — new `(index key, primary key)` pairs are
    ///   physically installed into the secondary index, in the same lock
    ///   acquisition as their version bump. A concurrent lookup therefore
    ///   either sees the pre-bump version (its validation catches the
    ///   change) or sees the provisional pair and resolves it through the
    ///   row record — which this transaction holds locked, so the reader
    ///   spins until commit or abort and then filters by the row's actual
    ///   index key. No window exists in which the version is current but
    ///   the membership is stale.
    /// * **removals and primary appear/disappear** — announced with a bump
    ///   only; the physical change happens in the write phase. Readers in
    ///   the window see a stale pair (or slot) whose record is locked, and
    ///   resolve it the same way.
    ///
    /// Fencing before validation is what closes the write-skew two
    /// concurrent scan-then-modify transactions would otherwise slip
    /// through: at least one of them sees the other's bump when
    /// validating. The returned bumps let the committing transaction
    /// refresh its own node set; the returned additions must be handed to
    /// [`Table::fence_rollback`] if the commit aborts.
    pub fn membership_fence(
        &self,
        key: &Key,
        before: Option<&Tuple>,
        after: Option<&Tuple>,
    ) -> FenceEffect {
        let mut effect = FenceEffect::default();
        if before.is_some() != after.is_some() {
            effect.bumps.push(self.primary.bump_covering(key));
        }
        for (index_id, idx) in self.secondary.iter().enumerate() {
            let old_key = before.and_then(|t| t.index_key(&idx.def.positions));
            let new_key = after.and_then(|t| t.index_key(&idx.def.positions));
            if old_key == new_key {
                continue;
            }
            if let Some(ok) = &old_key {
                effect.bumps.push(idx.map.bump_covering(ok));
            }
            if let Some(nk) = new_key {
                let added = std::cell::Cell::new(false);
                let bump = idx.map.update_or_insert(
                    &nk,
                    true,
                    |set| {
                        if set.insert(key.clone()) {
                            added.set(true);
                            UpdateOutcome::Changed
                        } else {
                            UpdateOutcome::Unchanged
                        }
                    },
                    || {
                        added.set(true);
                        Some(BTreeSet::from([key.clone()]))
                    },
                );
                effect.bumps.extend(bump);
                if added.get() {
                    effect.added.push((index_id, nk));
                }
            }
        }
        effect
    }

    /// Undoes the provisional secondary-index additions of a
    /// [`Table::membership_fence`] whose commit failed validation. Bumps
    /// the affected nodes again (readers that saw the provisional pair
    /// resolve it through the aborted record anyway; the extra bump only
    /// causes safe spurious invalidations).
    pub fn fence_rollback(&self, key: &Key, added: &[(usize, Key)]) {
        for (index_id, ik) in added {
            self.secondary[*index_id].map.update_or_insert(
                ik,
                true,
                |set| {
                    if set.remove(key) {
                        if set.is_empty() {
                            UpdateOutcome::Remove
                        } else {
                            UpdateOutcome::Changed
                        }
                    } else {
                        UpdateOutcome::Unchanged
                    }
                },
                || None,
            );
        }
    }

    /// Write-phase counterpart of the fence: quietly removes the stale
    /// `(old index key, pk)` pairs of a committed update (`after = Some`)
    /// or delete (`after = None`). The fence already announced these
    /// removals with a bump, and the additions were already installed, so
    /// nothing else remains to do here.
    pub fn index_retire_fenced(&self, pk: &Key, before: &Tuple, after: Option<&Tuple>) {
        for idx in &self.secondary {
            let old_key = before.index_key(&idx.def.positions);
            let new_key = after.and_then(|t| t.index_key(&idx.def.positions));
            if old_key == new_key {
                continue;
            }
            if let Some(ok) = old_key {
                idx.map.update_or_insert(
                    &ok,
                    false,
                    |set| {
                        if set.remove(pk) {
                            if set.is_empty() {
                                UpdateOutcome::Remove
                            } else {
                                UpdateOutcome::Changed
                            }
                        } else {
                            UpdateOutcome::Unchanged
                        }
                    },
                    || None,
                );
            }
        }
    }

    /// Registers `row` (with primary key `pk`) in every secondary index,
    /// bumping the affected nodes. Used by the bulk loader and recovery
    /// replay; transactional commits install additions through
    /// [`Table::membership_fence`] instead.
    pub fn index_insert(&self, pk: &Key, row: &Tuple) {
        for idx in &self.secondary {
            if let Some(ik) = row.index_key(&idx.def.positions) {
                idx.map.update_or_insert(
                    &ik,
                    true,
                    |set| {
                        if set.insert(pk.clone()) {
                            UpdateOutcome::Changed
                        } else {
                            UpdateOutcome::Unchanged
                        }
                    },
                    || Some(BTreeSet::from([pk.clone()])),
                );
            }
        }
    }

    /// Removes `row`'s entries from every secondary index (bulk loads,
    /// recovery replay, index maintenance outside commit), bumping nodes.
    pub fn index_remove(&self, pk: &Key, row: &Tuple) {
        for idx in &self.secondary {
            if let Some(ik) = row.index_key(&idx.def.positions) {
                idx.map.update_or_insert(
                    &ik,
                    true,
                    |set| {
                        if set.remove(pk) {
                            if set.is_empty() {
                                UpdateOutcome::Remove
                            } else {
                                UpdateOutcome::Changed
                            }
                        } else {
                            UpdateOutcome::Unchanged
                        }
                    },
                    || None,
                );
            }
        }
    }

    /// Updates secondary indexes when a row changes from `old` to `new`,
    /// bumping the affected nodes (bulk-load/replay path).
    pub fn index_update(&self, pk: &Key, old: &Tuple, new: &Tuple) {
        self.index_remove(pk, old);
        self.index_insert(pk, new);
    }

    /// Applies one redo record during crash recovery: installs `image` (or a
    /// logical delete when `None`) at `key` with the recorded commit TID,
    /// maintaining secondary indexes. Recovery replays records in TID order
    /// on a database that is not yet accepting transactions, so the record
    /// lock is only held to satisfy the install protocol.
    ///
    /// Replay is **idempotent by TID**: a record whose TID does not exceed
    /// the version already in the slot is skipped. This is what lets
    /// recovery layer a log tail over checkpoint rows (a fuzzy checkpoint
    /// may have captured a row *newer* than some retained log records), and
    /// what makes a crash between checkpoint completion and log truncation
    /// harmless — re-replaying covered records changes nothing.
    pub fn replay(&self, key: &Key, image: Option<&Tuple>, tid: TidWord) {
        if let Some(existing) = self.get(key) {
            if existing.tid().version() >= tid.version() {
                return; // slot already carries this or a newer version
            }
        }
        match image {
            Some(row) => {
                let (record, _created) = self.get_or_create(key.clone(), row.clone());
                let was_visible = record.is_visible();
                let before = record.read_unguarded();
                record.lock();
                record.install(row.clone(), tid);
                if was_visible {
                    self.index_update(key, &before, row);
                } else {
                    self.index_insert(key, row);
                }
            }
            None => {
                // The slot exists whenever the matching insert was replayed;
                // epoch-prefix durability guarantees that, because the insert
                // committed in an epoch no later than the delete's.
                if let Some(record) = self.get(key) {
                    if record.is_visible() {
                        self.index_remove(key, &record.read_unguarded());
                    }
                    record.lock();
                    record.install_delete(tid);
                }
            }
        }
    }

    /// Applies one *delta* redo record during crash recovery: reconstructs
    /// the after-image by applying `delta` to the image currently in the
    /// slot and installs it under `tid`, maintaining secondary indexes.
    ///
    /// Replay order makes this sound: recovery replays checkpoint rows
    /// first and then the log tail in commit-TID order, so when this record
    /// is reached the slot holds the newest version at or before `tid` that
    /// survived — which for an intact chain is exactly the delta's `base`
    /// (the version the committing transaction overwrote; OCC validation
    /// pinned it). The rules, in order:
    ///
    /// * slot version `>= tid` — skip, idempotent by TID like
    ///   [`Table::replay`] (a fuzzy checkpoint may have captured a newer
    ///   image; the delta's effects are already included);
    /// * slot missing or deleted — the chain's root is gone:
    ///   [`ReplayError::MissingBase`];
    /// * slot version `!= base` — an intermediate link is missing:
    ///   [`ReplayError::BaseMismatch`];
    /// * arity mismatch between base image and delta:
    ///   [`ReplayError::ArityMismatch`].
    ///
    /// Refusing instead of force-applying is deliberate: a mis-rooted delta
    /// silently merged onto the wrong base would recover *plausible but
    /// wrong* rows, the worst failure mode a redo log can have.
    pub fn replay_delta(
        &self,
        key: &Key,
        base: TidWord,
        delta: &TupleDelta,
        tid: TidWord,
    ) -> std::result::Result<(), ReplayError> {
        let missing = || ReplayError::MissingBase {
            relation: self.name.clone(),
            key: key.to_string(),
            tid,
        };
        let Some(record) = self.get(key) else {
            return Err(missing());
        };
        let current = record.tid();
        if current.version() >= tid.version() {
            return Ok(()); // already covered (checkpoint row or re-replay)
        }
        if current.is_absent() {
            return Err(missing());
        }
        if current.version() != base.version() {
            return Err(ReplayError::BaseMismatch {
                relation: self.name.clone(),
                key: key.to_string(),
                expected: base,
                found: current.unlocked(),
            });
        }
        let before = record.read_unguarded();
        let Some(row) = delta.apply(&before) else {
            return Err(ReplayError::ArityMismatch {
                relation: self.name.clone(),
                key: key.to_string(),
            });
        };
        record.lock();
        record.install(row.clone(), tid);
        self.index_update(key, &before, &row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use reactdb_common::Value;
    use std::sync::Arc;

    fn customer_table() -> Table {
        let schema = Schema::of(
            &[
                ("c_id", ColumnType::Int),
                ("c_last", ColumnType::Str),
                ("c_balance", ColumnType::Float),
            ],
            &["c_id"],
        );
        Table::with_indexes("customer", schema, &[vec!["c_last".to_owned()]])
    }

    fn row(id: i64, last: &str, bal: f64) -> Tuple {
        Tuple::of([Value::Int(id), Value::Str(last.into()), Value::Float(bal)])
    }

    #[test]
    fn load_and_point_lookup() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        t.load_row(row(2, "JONES", 20.0)).unwrap();
        assert_eq!(t.visible_len(), 2);
        let rec = t.get(&Key::Int(1)).unwrap();
        assert_eq!(
            rec.read_unguarded().get(t.schema(), "c_last"),
            &Value::Str("SMITH".into())
        );
        assert!(t.get(&Key::Int(99)).is_none());
    }

    #[test]
    fn duplicate_load_is_rejected() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        let err = t.load_row(row(1, "SMITH", 10.0)).unwrap_err();
        assert!(matches!(err, TxnError::DuplicateKey { .. }));
    }

    #[test]
    fn schema_violation_rejected_at_load() {
        let t = customer_table();
        let bad = Tuple::of([
            Value::Str("not an id".into()),
            Value::Str("X".into()),
            Value::Float(0.0),
        ]);
        assert!(t.load_row(bad).is_err());
    }

    #[test]
    fn range_scan_in_key_order() {
        let t = customer_table();
        for i in (1..=5).rev() {
            t.load_row(row(i, "L", i as f64)).unwrap();
        }
        let hits = t.range(Bound::Included(&Key::Int(2)), Bound::Included(&Key::Int(4)));
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![Key::Int(2), Key::Int(3), Key::Int(4)]);
        let all = t.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn observed_range_is_invalidated_by_overlapping_slot_creation() {
        let t = customer_table();
        for i in 0..10 {
            t.load_row(row(i, "L", 0.0)).unwrap();
        }
        let (_, obs) = t.range_observed(
            Bound::Included(&Key::Int(0)),
            Bound::Included(&Key::Int(20)),
        );
        assert!(obs.iter().all(|o| o.is_current()));
        let (_, created) = t.get_or_create(Key::Int(15), row(15, "N", 0.0));
        assert!(created.is_some(), "new slot is structural");
        assert!(
            obs.iter().any(|o| !o.is_current()),
            "slot creation inside the scanned range invalidates an observation"
        );
    }

    #[test]
    fn secondary_index_lookup_and_update() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        t.load_row(row(2, "SMITH", 20.0)).unwrap();
        t.load_row(row(3, "JONES", 30.0)).unwrap();
        let smiths = t.secondary_lookup(0, &Key::Str("SMITH".into()));
        assert_eq!(smiths, vec![Key::Int(1), Key::Int(2)]);

        // Simulate an update changing the indexed column.
        let old = row(2, "SMITH", 20.0);
        let new = row(2, "BROWN", 20.0);
        t.index_update(&Key::Int(2), &old, &new);
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("SMITH".into())),
            vec![Key::Int(1)]
        );
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("BROWN".into())),
            vec![Key::Int(2)]
        );

        t.index_remove(&Key::Int(3), &row(3, "JONES", 30.0));
        assert!(t.secondary_lookup(0, &Key::Str("JONES".into())).is_empty());
    }

    #[test]
    fn secondary_observation_catches_membership_changes() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        let (pks, obs) = t.secondary_lookup_observed(0, &Key::Str("SMITH".into()));
        assert_eq!(pks.len(), 1);
        // A new SMITH row changes the key's PK set and bumps the node.
        t.index_insert(&Key::Int(2), &row(2, "SMITH", 20.0));
        assert!(!obs.is_current());
        // Retiring a stale pair after the fence announced it is quiet.
        let (_, obs2) = t.secondary_lookup_observed(0, &Key::Str("SMITH".into()));
        t.index_retire_fenced(
            &Key::Int(2),
            &row(2, "SMITH", 20.0),
            Some(&row(2, "BROWN", 20.0)),
        );
        assert!(obs2.is_current(), "fenced retirement is quiet");
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("SMITH".into())),
            vec![Key::Int(1)]
        );
    }

    #[test]
    fn membership_fence_installs_additions_and_announces_removals() {
        let t = customer_table();
        t.load_row(row(1, "SMITH", 10.0)).unwrap();
        // Insert: primary bump + secondary addition (installed + bumped).
        let obs_p = t.get_observed(&Key::Int(50)).1;
        let (_, obs_s) = t.secondary_lookup_observed(0, &Key::Str("NEW".into()));
        let effect = t.membership_fence(&Key::Int(50), None, Some(&row(50, "NEW", 0.0)));
        assert_eq!(effect.bumps.len(), 2);
        assert_eq!(effect.added.len(), 1);
        assert!(!obs_p.is_current() && !obs_s.is_current());
        // The addition is physically visible at fence time...
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("NEW".into())),
            vec![Key::Int(50)]
        );
        // ...and a rollback undoes it (with another bump).
        t.fence_rollback(&Key::Int(50), &effect.added);
        assert!(t.secondary_lookup(0, &Key::Str("NEW".into())).is_empty());

        // Update keeping the indexed column: no bumps at all.
        let effect = t.membership_fence(
            &Key::Int(1),
            Some(&row(1, "SMITH", 10.0)),
            Some(&row(1, "SMITH", 99.0)),
        );
        assert!(effect.bumps.is_empty() && effect.added.is_empty());
        // Update changing the indexed column: removal announced, addition
        // installed.
        let effect = t.membership_fence(
            &Key::Int(1),
            Some(&row(1, "SMITH", 10.0)),
            Some(&row(1, "BROWN", 10.0)),
        );
        assert_eq!(effect.bumps.len(), 2);
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("BROWN".into())),
            vec![Key::Int(1)]
        );
        // The stale SMITH pair stays until the write phase retires it.
        assert_eq!(
            t.secondary_lookup(0, &Key::Str("SMITH".into())),
            vec![Key::Int(1)]
        );
        t.index_retire_fenced(
            &Key::Int(1),
            &row(1, "SMITH", 10.0),
            Some(&row(1, "BROWN", 10.0)),
        );
        assert!(t.secondary_lookup(0, &Key::Str("SMITH".into())).is_empty());

        // Delete: primary + secondary announced, retirement at install.
        let effect = t.membership_fence(&Key::Int(1), Some(&row(1, "BROWN", 10.0)), None);
        assert_eq!(effect.bumps.len(), 2);
        assert!(effect.added.is_empty());
        t.index_retire_fenced(&Key::Int(1), &row(1, "BROWN", 10.0), None);
        assert!(t.secondary_lookup(0, &Key::Str("BROWN".into())).is_empty());
    }

    #[test]
    fn secondary_range_returns_pairs_in_order() {
        let t = customer_table();
        t.load_row(row(1, "ADAMS", 1.0)).unwrap();
        t.load_row(row(2, "BAKER", 2.0)).unwrap();
        t.load_row(row(3, "CLARK", 3.0)).unwrap();
        let hits = t.secondary_range(
            0,
            Bound::Included(&Key::Str("ADAMS".into())),
            Bound::Included(&Key::Str("BAKER".into())),
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, Key::Str("ADAMS".into()));
        assert_eq!(hits[1].1, Key::Int(2));
        let (pairs, obs) = t.secondary_range_observed(
            0,
            Bound::Included(&Key::Str("ADAMS".into())),
            Bound::Unbounded,
        );
        assert_eq!(pairs.len(), 3);
        assert!(!obs.is_empty());
    }

    #[test]
    fn snapshot_chunks_capture_only_visible_rows() {
        let t = customer_table();
        for i in 0..25 {
            t.load_row(row(i, "L", i as f64)).unwrap();
        }
        // An uncommitted insert slot and a deleted row must be skipped.
        let _ = t.get_or_create(Key::Int(100), row(100, "PENDING", 0.0));
        let victim = t.get(&Key::Int(3)).unwrap();
        victim.lock();
        victim.install_delete(TidWord::committed(2, 9));
        let mut captured = Vec::new();
        let mut cursor: Option<Key> = None;
        let mut chunks = 0;
        loop {
            let chunk = t.snapshot_chunk(cursor.as_ref(), 7);
            chunks += 1;
            captured.extend(chunk.rows);
            match chunk.next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert!(chunks >= 4, "25 keys / 7 per chunk needs several chunks");
        assert_eq!(captured.len(), 24, "deleted + pending slots are skipped");
        assert!(captured.iter().all(|(k, _, _)| *k != Key::Int(3)));
        assert!(
            captured.windows(2).all(|w| w[0].0 < w[1].0),
            "rows arrive in key order"
        );
    }

    #[test]
    fn replay_is_idempotent_by_tid() {
        let t = customer_table();
        // First replay installs; an equal-TID re-replay and an older-TID
        // record are both skipped; a newer TID wins.
        t.replay(
            &Key::Int(1),
            Some(&row(1, "NEW", 5.0)),
            TidWord::committed(3, 4),
        );
        t.replay(
            &Key::Int(1),
            Some(&row(1, "DUP", 0.0)),
            TidWord::committed(3, 4),
        );
        t.replay(
            &Key::Int(1),
            Some(&row(1, "OLD", 0.0)),
            TidWord::committed(2, 9),
        );
        let rec = t.get(&Key::Int(1)).unwrap();
        assert_eq!(
            rec.read_unguarded().get(t.schema(), "c_last"),
            &Value::Str("NEW".into())
        );
        t.replay(
            &Key::Int(1),
            Some(&row(1, "NEWER", 1.0)),
            TidWord::committed(4, 1),
        );
        assert_eq!(
            t.get(&Key::Int(1)).unwrap().read_unguarded().at(1),
            &Value::Str("NEWER".into())
        );
        // Deletes obey the same rule.
        t.replay(&Key::Int(1), None, TidWord::committed(4, 0));
        assert!(
            t.get(&Key::Int(1)).unwrap().is_visible(),
            "stale delete skipped"
        );
        t.replay(&Key::Int(1), None, TidWord::committed(5, 1));
        assert!(!t.get(&Key::Int(1)).unwrap().is_visible());
        // A delete for a never-seen key is a no-op.
        t.replay(&Key::Int(77), None, TidWord::committed(5, 2));
        assert!(t.get(&Key::Int(77)).is_none());
    }

    #[test]
    fn replay_delta_applies_chains_and_refuses_broken_ones() {
        let t = customer_table();
        let v1 = row(1, "BASE", 1.0);
        let v2 = row(1, "BASE", 2.0);
        let v3 = row(1, "MOVED", 3.0);
        t.replay(&Key::Int(1), Some(&v1), TidWord::committed(1, 1));
        let d12 = TupleDelta::diff(&v1, &v2).unwrap();
        let d23 = TupleDelta::diff(&v2, &v3).unwrap();
        // Chain applies in TID order, maintaining the secondary index.
        t.replay_delta(
            &Key::Int(1),
            TidWord::committed(1, 1),
            &d12,
            TidWord::committed(2, 1),
        )
        .unwrap();
        t.replay_delta(
            &Key::Int(1),
            TidWord::committed(2, 1),
            &d23,
            TidWord::committed(3, 1),
        )
        .unwrap();
        assert_eq!(t.get(&Key::Int(1)).unwrap().read_unguarded(), v3);
        assert_eq!(t.secondary_lookup(0, &Key::Str("MOVED".into())).len(), 1);
        assert!(t.secondary_lookup(0, &Key::Str("BASE".into())).is_empty());
        // Idempotence: an already-covered delta is a no-op, not an error.
        t.replay_delta(
            &Key::Int(1),
            TidWord::committed(1, 1),
            &d12,
            TidWord::committed(2, 1),
        )
        .unwrap();
        assert_eq!(t.get(&Key::Int(1)).unwrap().read_unguarded(), v3);
        // Missing base: a delta for a key with no slot is refused.
        let err = t
            .replay_delta(
                &Key::Int(9),
                TidWord::committed(1, 1),
                &d12,
                TidWord::committed(4, 1),
            )
            .unwrap_err();
        assert!(matches!(err, ReplayError::MissingBase { .. }), "{err}");
        // Base mismatch: the slot is at v3 but the delta expects v1.
        let err = t
            .replay_delta(
                &Key::Int(1),
                TidWord::committed(1, 1),
                &d12,
                TidWord::committed(9, 1),
            )
            .unwrap_err();
        assert!(matches!(err, ReplayError::BaseMismatch { .. }), "{err}");
        // Deleted base: a delta over a tombstone is refused.
        t.replay(&Key::Int(1), None, TidWord::committed(10, 1));
        let err = t
            .replay_delta(
                &Key::Int(1),
                TidWord::committed(10, 1),
                &d12,
                TidWord::committed(11, 1),
            )
            .unwrap_err();
        assert!(matches!(err, ReplayError::MissingBase { .. }), "{err}");
    }

    #[test]
    fn replay_delta_rejects_arity_drift() {
        let t = customer_table();
        t.replay(
            &Key::Int(2),
            Some(&row(2, "A", 1.0)),
            TidWord::committed(1, 1),
        );
        let delta = TupleDelta::from_parts(5, vec![(4, Value::Int(7))]).unwrap();
        let err = t
            .replay_delta(
                &Key::Int(2),
                TidWord::committed(1, 1),
                &delta,
                TidWord::committed(2, 1),
            )
            .unwrap_err();
        assert!(matches!(err, ReplayError::ArityMismatch { .. }), "{err}");
    }

    #[test]
    fn get_or_create_returns_same_slot() {
        let t = customer_table();
        let (a, created_a) = t.get_or_create(Key::Int(7), row(7, "NEW", 0.0));
        let (b, created_b) = t.get_or_create(Key::Int(7), row(7, "NEW", 0.0));
        assert!(created_a.is_some());
        assert!(created_b.is_none());
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_visible());
        assert_eq!(t.physical_len(), 1);
        assert_eq!(t.visible_len(), 0);
    }

    #[test]
    #[should_panic(expected = "indexed column")]
    fn unknown_indexed_column_panics() {
        let schema = Schema::of(&[("a", ColumnType::Int)], &["a"]);
        Table::with_indexes("t", schema, &[vec!["missing".to_owned()]]);
    }
}
