//! Rows of relational values.

use reactdb_common::{Key, Value};
use serde::{Deserialize, Serialize};

use crate::schema::Schema;

/// A row: an ordered sequence of values matching a [`Schema`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Creates a tuple from anything convertible to values.
    pub fn of<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Self {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The raw values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the raw values.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn at(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Value of the named column resolved through `schema`.
    ///
    /// # Panics
    /// Panics when the column does not exist; workload code addresses
    /// columns that are fixed by its own schema definitions.
    pub fn get(&self, schema: &Schema, column: &str) -> &Value {
        let pos = schema
            .position_of(column)
            .unwrap_or_else(|| panic!("column {column} not in schema"));
        &self.values[pos]
    }

    /// Replaces the value of the named column resolved through `schema`.
    ///
    /// # Panics
    /// Panics when the column does not exist.
    pub fn set(&mut self, schema: &Schema, column: &str, value: impl Into<Value>) {
        let pos = schema
            .position_of(column)
            .unwrap_or_else(|| panic!("column {column} not in schema"));
        self.values[pos] = value.into();
    }

    /// Extracts the primary key of this tuple under `schema`.
    ///
    /// # Panics
    /// Panics if a key column holds a value with no key representation
    /// (float or NULL), which schema validation prevents for inserted rows.
    pub fn primary_key(&self, schema: &Schema) -> Key {
        let positions = schema.key_positions();
        if positions.len() == 1 {
            self.values[positions[0]]
                .to_key()
                .expect("primary key column must be orderable and non-null")
        } else {
            Key::Composite(
                positions
                    .iter()
                    .map(|p| {
                        self.values[*p]
                            .to_key()
                            .expect("primary key column must be orderable and non-null")
                    })
                    .collect(),
            )
        }
    }

    /// Extracts the key of a secondary index over the given column
    /// positions.
    pub fn index_key(&self, positions: &[usize]) -> Option<Key> {
        if positions.len() == 1 {
            self.values[positions[0]].to_key()
        } else {
            let mut parts = Vec::with_capacity(positions.len());
            for p in positions {
                parts.push(self.values[*p].to_key()?);
            }
            Some(Key::Composite(parts))
        }
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// A field-level delta between two images of one row: the positions whose
/// values changed, with their new values. The durability layer ships these
/// instead of full row images for repeat updates, so log bandwidth scales
/// with what changed rather than with row width.
///
/// A delta is only meaningful relative to the exact base image it was
/// computed against; [`TupleDelta::apply`] therefore re-checks the arity,
/// and the replay path additionally matches the base version (see
/// `Table::replay_delta`). Invariants held by construction: positions are
/// strictly ascending and all below `arity`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleDelta {
    arity: u32,
    changes: Vec<(u32, Value)>,
}

impl TupleDelta {
    /// Computes the delta turning `before` into `after`. Returns `None`
    /// when the arities differ — such a change has no field-level
    /// representation and must be logged as a full image.
    pub fn diff(before: &Tuple, after: &Tuple) -> Option<TupleDelta> {
        if before.arity() != after.arity() {
            return None;
        }
        let changes = before
            .values()
            .iter()
            .zip(after.values())
            .enumerate()
            .filter(|(_, (b, a))| b != a)
            .map(|(i, (_, a))| (i as u32, a.clone()))
            .collect();
        Some(TupleDelta {
            arity: after.arity() as u32,
            changes,
        })
    }

    /// Builds a delta from raw parts (the decode path). Returns `None`
    /// unless the positions are strictly ascending and below `arity` — a
    /// malformed delta is rejected, never mis-applied.
    pub fn from_parts(arity: u32, changes: Vec<(u32, Value)>) -> Option<TupleDelta> {
        let ascending_in_range = changes
            .iter()
            .enumerate()
            .all(|(i, (pos, _))| *pos < arity && (i == 0 || changes[i - 1].0 < *pos));
        if !ascending_in_range {
            return None;
        }
        Some(TupleDelta { arity, changes })
    }

    /// Arity of the row this delta applies to.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// The changed fields: `(position, new value)` in ascending position
    /// order.
    pub fn changes(&self) -> &[(u32, Value)] {
        &self.changes
    }

    /// True when no field changed (the update rewrote an identical image;
    /// only the row version moves).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Applies the delta to `base`, producing the after-image. Returns
    /// `None` when `base` has a different arity than the image the delta
    /// was computed against.
    pub fn apply(&self, base: &Tuple) -> Option<Tuple> {
        if base.arity() as u32 != self.arity {
            return None;
        }
        let mut values = base.values().to_vec();
        for (pos, value) in &self.changes {
            values[*pos as usize] = value.clone();
        }
        Some(Tuple::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn schema() -> Schema {
        Schema::of(
            &[
                ("w_id", ColumnType::Int),
                ("d_id", ColumnType::Int),
                ("name", ColumnType::Str),
            ],
            &["w_id", "d_id"],
        )
    }

    #[test]
    fn get_set_by_name() {
        let s = schema();
        let mut t = Tuple::of([Value::Int(1), Value::Int(2), Value::Str("x".into())]);
        assert_eq!(t.get(&s, "name"), &Value::Str("x".into()));
        t.set(&s, "name", "y");
        assert_eq!(t.get(&s, "name"), &Value::Str("y".into()));
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn composite_primary_key_extraction() {
        let s = schema();
        let t = Tuple::of([Value::Int(1), Value::Int(2), Value::Str("x".into())]);
        assert_eq!(
            t.primary_key(&s),
            Key::composite([Key::Int(1), Key::Int(2)])
        );
    }

    #[test]
    fn single_column_primary_key() {
        let s = Schema::of(
            &[("id", ColumnType::Int), ("v", ColumnType::Float)],
            &["id"],
        );
        let t = Tuple::of([Value::Int(9), Value::Float(1.0)]);
        assert_eq!(t.primary_key(&s), Key::Int(9));
    }

    #[test]
    fn index_key_returns_none_for_unorderable() {
        let t = Tuple::of([Value::Float(1.0), Value::Int(3)]);
        assert_eq!(t.index_key(&[0]), None);
        assert_eq!(t.index_key(&[1]), Some(Key::Int(3)));
        assert_eq!(
            t.index_key(&[1, 1]),
            Some(Key::composite([Key::Int(3), Key::Int(3)]))
        );
    }

    #[test]
    fn delta_diff_apply_roundtrip() {
        let before = Tuple::of([
            Value::Int(1),
            Value::Str("unchanged".into()),
            Value::Float(10.0),
            Value::Bool(false),
        ]);
        let mut after = before.clone();
        after.values_mut()[2] = Value::Float(11.5);
        after.values_mut()[3] = Value::Bool(true);
        let delta = TupleDelta::diff(&before, &after).unwrap();
        assert_eq!(delta.changes().len(), 2);
        assert_eq!(delta.changes()[0].0, 2);
        assert_eq!(delta.apply(&before).unwrap(), after);
        // Identical images yield an empty (version-only) delta.
        let empty = TupleDelta::diff(&before, &before).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.apply(&before).unwrap(), before);
        // Arity changes have no delta representation.
        assert!(TupleDelta::diff(&before, &Tuple::of([Value::Int(1)])).is_none());
        // Applying to a wrong-arity base is refused.
        assert!(delta.apply(&Tuple::of([Value::Int(1)])).is_none());
    }

    #[test]
    fn malformed_delta_parts_are_rejected() {
        // Out-of-range position.
        assert!(TupleDelta::from_parts(2, vec![(2, Value::Int(0))]).is_none());
        // Unsorted / duplicate positions.
        assert!(TupleDelta::from_parts(3, vec![(1, Value::Int(0)), (0, Value::Int(1))]).is_none());
        assert!(TupleDelta::from_parts(3, vec![(1, Value::Int(0)), (1, Value::Int(1))]).is_none());
        // A well-formed delta is accepted.
        assert!(TupleDelta::from_parts(3, vec![(0, Value::Int(0)), (2, Value::Int(1))]).is_some());
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn get_unknown_column_panics() {
        let s = schema();
        let t = Tuple::of([Value::Int(1), Value::Int(2), Value::Str("x".into())]);
        t.get(&s, "missing");
    }
}
