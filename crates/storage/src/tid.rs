//! Silo-style transaction-id (TID) words.
//!
//! Every record carries a 64-bit word combining the concurrency-control
//! metadata needed by the Silo OCC protocol [53] that ReactDB reuses
//! (§3.2.1):
//!
//! ```text
//!  bit 63        : lock bit (held during the write phase of commit)
//!  bits 62 .. 48 : epoch number (15 bits)
//!  bits 47 ..  1 : sequence number within the epoch (47 bits)
//!  bit  0        : absent bit (record is logically deleted / not yet
//!                  inserted)
//! ```
//!
//! The numeric ordering of the epoch+sequence fields gives the commit order
//! used during read-set validation.

use serde::{Deserialize, Serialize};

const LOCK_BIT: u64 = 1 << 63;
const ABSENT_BIT: u64 = 1;
const EPOCH_SHIFT: u32 = 48;
const EPOCH_MASK: u64 = 0x7FFF; // 15 bits
const SEQ_SHIFT: u32 = 1;
const SEQ_MASK: u64 = (1 << 47) - 1;

/// A decoded or raw TID word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TidWord(pub u64);

impl TidWord {
    /// The initial word of a freshly created, not-yet-committed record:
    /// unlocked, epoch 0, sequence 0, absent.
    pub fn absent() -> Self {
        TidWord(ABSENT_BIT)
    }

    /// Builds a committed (present) TID from an epoch and a sequence number.
    ///
    /// # Panics
    /// Panics if the fields overflow their bit widths.
    pub fn committed(epoch: u64, seq: u64) -> Self {
        assert!(epoch <= EPOCH_MASK, "epoch {epoch} overflows TID word");
        assert!(seq <= SEQ_MASK, "sequence {seq} overflows TID word");
        TidWord((epoch << EPOCH_SHIFT) | (seq << SEQ_SHIFT))
    }

    /// Raw 64-bit representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True if the lock bit is set.
    pub fn is_locked(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// True if the absent (deleted / not yet inserted) bit is set.
    pub fn is_absent(self) -> bool {
        self.0 & ABSENT_BIT != 0
    }

    /// Epoch field.
    pub fn epoch(self) -> u64 {
        (self.0 >> EPOCH_SHIFT) & EPOCH_MASK
    }

    /// Sequence field.
    pub fn sequence(self) -> u64 {
        (self.0 >> SEQ_SHIFT) & SEQ_MASK
    }

    /// The word with the lock bit set.
    pub fn locked(self) -> Self {
        TidWord(self.0 | LOCK_BIT)
    }

    /// The word with the lock bit cleared.
    pub fn unlocked(self) -> Self {
        TidWord(self.0 & !LOCK_BIT)
    }

    /// The word with the absent bit set.
    pub fn as_absent(self) -> Self {
        TidWord(self.0 | ABSENT_BIT)
    }

    /// The word with the absent bit cleared.
    pub fn as_present(self) -> Self {
        TidWord(self.0 & !ABSENT_BIT)
    }

    /// The version fields (epoch, sequence) ignoring lock and absent bits.
    /// Two words with the same version are the same committed version.
    pub fn version(self) -> u64 {
        self.0 & !(LOCK_BIT | ABSENT_BIT)
    }

    /// Compares only the commit-order fields (epoch, sequence).
    pub fn same_version(self, other: TidWord) -> bool {
        self.version() == other.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn absent_word_properties() {
        let w = TidWord::absent();
        assert!(w.is_absent());
        assert!(!w.is_locked());
        assert_eq!(w.epoch(), 0);
        assert_eq!(w.sequence(), 0);
    }

    #[test]
    fn committed_roundtrip() {
        let w = TidWord::committed(5, 1234);
        assert_eq!(w.epoch(), 5);
        assert_eq!(w.sequence(), 1234);
        assert!(!w.is_absent());
        assert!(!w.is_locked());
    }

    #[test]
    fn lock_and_absent_bits_do_not_disturb_version() {
        let w = TidWord::committed(3, 77);
        assert!(w.locked().is_locked());
        assert!(w.locked().same_version(w));
        assert!(w.as_absent().same_version(w));
        assert_eq!(w.locked().unlocked(), w);
        assert_eq!(w.as_absent().as_present(), w);
    }

    #[test]
    fn ordering_follows_epoch_then_sequence() {
        assert!(TidWord::committed(1, 0).version() > TidWord::committed(0, 100).version());
        assert!(TidWord::committed(2, 5).version() > TidWord::committed(2, 4).version());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn epoch_overflow_panics() {
        TidWord::committed(EPOCH_MASK + 1, 0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(epoch in 0u64..=EPOCH_MASK, seq in 0u64..=SEQ_MASK) {
            let w = TidWord::committed(epoch, seq);
            prop_assert_eq!(w.epoch(), epoch);
            prop_assert_eq!(w.sequence(), seq);
            prop_assert!(!w.is_locked());
            prop_assert!(!w.is_absent());
            prop_assert!(w.locked().is_locked());
            prop_assert_eq!(w.locked().unlocked(), w);
        }

        #[test]
        fn prop_version_order_matches_field_order(
            e1 in 0u64..=EPOCH_MASK, s1 in 0u64..=SEQ_MASK,
            e2 in 0u64..=EPOCH_MASK, s2 in 0u64..=SEQ_MASK,
        ) {
            let w1 = TidWord::committed(e1, s1);
            let w2 = TidWord::committed(e2, s2);
            let field_order = (e1, s1).cmp(&(e2, s2));
            prop_assert_eq!(w1.version().cmp(&w2.version()), field_order);
        }
    }
}
