//! Versioned ordered index: the storage half of phantom protection.
//!
//! An ordered index whose key space is partitioned into *leaf nodes*, each
//! guarded by a version counter in the style of Masstree/Silo (Tu et al.,
//! SOSP 2013): every structural mutation — creating or removing a key, or
//! changing the membership of a key's value set — bumps the version of the
//! node whose key interval contains the mutated key. Range traversals
//! return, alongside the rows, a [`NodeObservation`] for **every node whose
//! interval intersects the scanned range, including empty ones**. The OCC
//! layer stores those observations in the transaction's node set and
//! re-checks them at commit, after write locks are acquired: a version
//! mismatch means the membership of a scanned range changed — a phantom —
//! and the transaction aborts.
//!
//! Nodes split when their population exceeds [`SPLIT_THRESHOLD`], keeping
//! the invalidation granularity proportional to data density rather than
//! table size. A split bumps the version of the node being split (its
//! observers can no longer tell which half later mutations land in, so they
//! must conservatively abort — the Masstree split rule); the right half
//! starts as a fresh node. Nodes are never merged: an empty interval still
//! needs a version for scans over it to observe, and the node count is
//! bounded by the historical maximum key count, which is fine for an
//! in-memory engine without physical garbage collection.
//!
//! Memory ordering: structural bumps and validation-time version loads use
//! `SeqCst`. Traversal-time observations are read under the index's read
//! lock (so they are consistent with the data read), but commit-time
//! validation reads versions without the lock; the fenced load pairs with
//! the fenced bump exactly like Silo's node-version re-check.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use reactdb_common::Key;

/// Keys per leaf node before it splits.
pub const SPLIT_THRESHOLD: usize = 64;

/// A leaf node of the versioned index: one version counter guarding one
/// contiguous interval of the key space.
#[derive(Debug)]
pub struct IndexNode {
    version: AtomicU64,
}

/// Shared handle to an index node. Scan sets hold these so that validation
/// addresses the exact node object that was traversed, even after splits
/// re-partition the key space.
pub type NodeRef = Arc<IndexNode>;

impl IndexNode {
    fn new() -> NodeRef {
        Arc::new(Self {
            version: AtomicU64::new(1),
        })
    }

    /// Current version. `SeqCst` so commit-time validation pairs with the
    /// bump of a concurrent structural mutation without holding the index
    /// lock.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    fn bump(&self) -> NodeBumpVersions {
        let before = self.version.fetch_add(1, Ordering::SeqCst);
        NodeBumpVersions {
            before,
            after: before + 1,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeBumpVersions {
    before: u64,
    after: u64,
}

/// A node version captured while traversing the index. Stored in the OCC
/// layer's node set and re-checked during commit validation.
#[derive(Debug, Clone)]
pub struct NodeObservation {
    /// The traversed node.
    pub node: NodeRef,
    /// Its version at traversal time.
    pub version: u64,
}

impl NodeObservation {
    /// True while no structural mutation has hit the node since the
    /// observation — the validation predicate.
    pub fn is_current(&self) -> bool {
        self.node.version() == self.version
    }

    /// Address identity of the node, used to deduplicate node sets.
    pub fn node_ptr(&self) -> usize {
        Arc::as_ptr(&self.node) as usize
    }
}

/// What an in-place entry update did, steering
/// [`VersionedIndex::update_or_insert`]'s version accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The entry was left as it was: never bumps.
    Unchanged,
    /// The entry's membership changed in place: bumps when requested.
    Changed,
    /// The entry should be removed: structural, always bumps.
    Remove,
}

/// One structural bump applied to a node, reported back to the mutator so
/// the OCC layer can refresh its own node set (Silo's rule: a transaction's
/// own structural insert must not invalidate its own scans).
#[derive(Debug, Clone)]
pub struct NodeBump {
    /// The bumped node.
    pub node: NodeRef,
    /// Version before the bump.
    pub before: u64,
    /// Version after the bump.
    pub after: u64,
}

struct IndexInner<V> {
    map: BTreeMap<Key, V>,
    /// Lower boundaries of nodes `1..`: node `i` covers
    /// `[boundaries[i-1], boundaries[i])`, node `0` starts at −∞ and the
    /// last node ends at +∞. Always `nodes.len() == boundaries.len() + 1`.
    boundaries: Vec<Key>,
    nodes: Vec<NodeRef>,
    /// Keys physically present per node, driving splits.
    population: Vec<usize>,
}

impl<V> IndexInner<V> {
    fn node_idx(&self, key: &Key) -> usize {
        self.boundaries.partition_point(|b| b <= key)
    }

    fn interval(&self, idx: usize) -> (Bound<&Key>, Bound<&Key>) {
        let low = if idx == 0 {
            Bound::Unbounded
        } else {
            Bound::Included(&self.boundaries[idx - 1])
        };
        let high = if idx == self.boundaries.len() {
            Bound::Unbounded
        } else {
            Bound::Excluded(&self.boundaries[idx])
        };
        (low, high)
    }

    /// Node indexes whose intervals intersect `[low, high]`. Conservative
    /// at excluded bounds (the boundary node is included), which can only
    /// add false invalidations, never miss one.
    fn covering(&self, low: Bound<&Key>, high: Bound<&Key>) -> (usize, usize) {
        let first = match low {
            Bound::Unbounded => 0,
            Bound::Included(k) | Bound::Excluded(k) => self.node_idx(k),
        };
        let last = match high {
            Bound::Unbounded => self.boundaries.len(),
            Bound::Included(k) | Bound::Excluded(k) => self.node_idx(k),
        };
        (first, last.max(first))
    }

    fn observe(&self, idx: usize) -> NodeObservation {
        let node = Arc::clone(&self.nodes[idx]);
        let version = node.version();
        NodeObservation { node, version }
    }

    fn bump(&self, idx: usize) -> NodeBump {
        let node = Arc::clone(&self.nodes[idx]);
        let v = node.bump();
        NodeBump {
            node,
            before: v.before,
            after: v.after,
        }
    }

    /// Splits node `idx` at the median of its resident keys when it
    /// overflowed. The split bumps the old node (left half); the right half
    /// is a fresh node.
    fn maybe_split(&mut self, idx: usize) {
        if self.population[idx] <= SPLIT_THRESHOLD {
            return;
        }
        let mid = self.population[idx] / 2;
        let boundary = {
            let (low, high) = self.interval(idx);
            match self.map.range((low, high)).nth(mid) {
                Some((k, _)) => k.clone(),
                None => return, // population drifted; nothing to split
            }
        };
        // Keys are unique and mid >= 1, so the boundary strictly exceeds
        // the node's first key and both halves are non-empty.
        self.boundaries.insert(idx, boundary);
        self.nodes.insert(idx + 1, IndexNode::new());
        let left = mid;
        let right = self.population[idx] - mid;
        self.population[idx] = left;
        self.population.insert(idx + 1, right);
        self.nodes[idx].bump();
    }
}

/// An ordered map from [`Key`] to `V` whose key space is partitioned into
/// versioned leaf nodes. See the module docs for the protocol.
pub struct VersionedIndex<V> {
    inner: RwLock<IndexInner<V>>,
}

impl<V> std::fmt::Debug for VersionedIndex<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("VersionedIndex")
            .field("len", &inner.map.len())
            .field("nodes", &inner.nodes.len())
            .finish()
    }
}

impl<V> Default for VersionedIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> VersionedIndex<V> {
    /// Creates an empty index with a single node covering the whole key
    /// space.
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(IndexInner {
                map: BTreeMap::new(),
                boundaries: Vec::new(),
                nodes: vec![IndexNode::new()],
                population: vec![0],
            }),
        }
    }

    /// Number of keys physically present.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// True when no key is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of leaf nodes the key space is currently split into.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Counts values matching a predicate without materialising them.
    pub fn count_values(&self, pred: impl Fn(&V) -> bool) -> usize {
        self.inner.read().map.values().filter(|v| pred(v)).count()
    }

    /// Observation of the node whose interval covers `key`, whether or not
    /// the key is present.
    pub fn observe(&self, key: &Key) -> NodeObservation {
        let inner = self.inner.read();
        inner.observe(inner.node_idx(key))
    }

    /// Bumps the node covering `key` (the commit path's membership fence:
    /// announce a membership change before validation re-checks node sets).
    pub fn bump_covering(&self, key: &Key) -> NodeBump {
        let inner = self.inner.read();
        let idx = inner.node_idx(key);
        inner.bump(idx)
    }
}

impl<V: Clone> VersionedIndex<V> {
    /// Point lookup.
    pub fn get_cloned(&self, key: &Key) -> Option<V> {
        self.inner.read().map.get(key).cloned()
    }

    /// Point lookup plus the covering node's observation, taken under one
    /// lock acquisition so the observation is consistent with the result.
    /// The observation lets the OCC layer validate the *absence* of a key
    /// (a later insert bumps the node).
    pub fn get_observed(&self, key: &Key) -> (Option<V>, NodeObservation) {
        let inner = self.inner.read();
        let obs = inner.observe(inner.node_idx(key));
        (inner.map.get(key).cloned(), obs)
    }

    /// Returns the value under `key`, inserting `make()` if absent. A
    /// creation is a structural mutation: the covering node is bumped and
    /// the bump is reported so the caller can refresh its own node set.
    /// When the creation triggers a split, the reported bump intentionally
    /// predates the split bump — observers of the split node must
    /// conservatively fail validation.
    pub fn get_or_insert_with(&self, key: &Key, make: impl FnOnce() -> V) -> (V, Option<NodeBump>) {
        {
            let inner = self.inner.read();
            if let Some(v) = inner.map.get(key) {
                return (v.clone(), None);
            }
        }
        let mut inner = self.inner.write();
        if let Some(v) = inner.map.get(key) {
            return (v.clone(), None);
        }
        let value = make();
        inner.map.insert(key.clone(), value.clone());
        let idx = inner.node_idx(key);
        inner.population[idx] += 1;
        let node = Arc::clone(&inner.nodes[idx]);
        let v = node.bump();
        inner.maybe_split(idx);
        (
            value,
            Some(NodeBump {
                node,
                before: v.before,
                after: v.after,
            }),
        )
    }

    /// Inserts or replaces the value under `key`, bumping the covering node
    /// either way (replacement swaps the stored handle, which observers of
    /// the old handle cannot track through the map). Returns the previous
    /// value.
    pub fn insert(&self, key: &Key, value: V) -> Option<V> {
        let mut inner = self.inner.write();
        let old = inner.map.insert(key.clone(), value);
        let idx = inner.node_idx(key);
        if old.is_none() {
            inner.population[idx] += 1;
        }
        inner.nodes[idx].bump();
        inner.maybe_split(idx);
        old
    }

    /// Removes `key`, bumping the covering node when it was present.
    pub fn remove(&self, key: &Key) -> Option<V> {
        let mut inner = self.inner.write();
        let old = inner.map.remove(key)?;
        let idx = inner.node_idx(key);
        inner.population[idx] = inner.population[idx].saturating_sub(1);
        inner.nodes[idx].bump();
        Some(old)
    }

    /// In-place mutation of the entry under `key`, in one atomic lock
    /// acquisition with any version bump it causes — which is what lets the
    /// commit path install a membership change and announce it without a
    /// window in between.
    ///
    /// When the entry exists, `update` runs on it in place (a single map
    /// lookup, no re-balance) and decides the outcome; when it is absent,
    /// `insert` may supply a value. Entry creation and removal are
    /// structural and always bump; an [`UpdateOutcome::Changed`] bumps only
    /// when `bump` is true — the commit write phase passes `false` for
    /// changes the membership fence already announced, so scans racing the
    /// fence→install window are not doubly invalidated. Returns the bump
    /// performed, if any (a split's extra bump is deliberately not
    /// reported: observers of a split node must conservatively fail
    /// validation).
    pub fn update_or_insert(
        &self,
        key: &Key,
        bump: bool,
        update: impl FnOnce(&mut V) -> UpdateOutcome,
        insert: impl FnOnce() -> Option<V>,
    ) -> Option<NodeBump> {
        let mut inner = self.inner.write();
        let idx = inner.node_idx(key);
        let outcome = match inner.map.get_mut(key) {
            Some(v) => update(v),
            None => match insert() {
                Some(v) => {
                    inner.map.insert(key.clone(), v);
                    inner.population[idx] += 1;
                    let bump = Some(inner.bump(idx));
                    inner.maybe_split(idx);
                    return bump;
                }
                None => return None,
            },
        };
        match outcome {
            UpdateOutcome::Unchanged => None,
            UpdateOutcome::Changed => {
                if bump {
                    Some(inner.bump(idx))
                } else {
                    None
                }
            }
            UpdateOutcome::Remove => {
                inner.map.remove(key);
                inner.population[idx] = inner.population[idx].saturating_sub(1);
                Some(inner.bump(idx))
            }
        }
    }

    /// One page of a cursor-driven traversal: up to `limit` entries strictly
    /// after `after` (from the beginning when `None`), in key order, plus the
    /// cursor to resume from (`None` when the index is exhausted). Each page
    /// is one short read-section of the index lock — the checkpointer's
    /// chunked snapshot walk uses this so a full-table capture never blocks
    /// writers for longer than one chunk.
    pub fn range_page(&self, after: Option<&Key>, limit: usize) -> (Vec<(Key, V)>, Option<Key>) {
        let inner = self.inner.read();
        let low = match after {
            Some(k) => Bound::Excluded(k.clone()),
            None => Bound::Unbounded,
        };
        let mut page: Vec<(Key, V)> = Vec::with_capacity(limit.min(1024));
        let mut iter = inner.map.range((low, Bound::Unbounded));
        for (k, v) in iter.by_ref().take(limit) {
            page.push((k.clone(), v.clone()));
        }
        let next = if iter.next().is_some() {
            page.last().map(|(k, _)| k.clone())
        } else {
            None
        };
        (page, next)
    }

    /// Entries within the bounds, in key order.
    pub fn range_cloned(&self, low: Bound<&Key>, high: Bound<&Key>) -> Vec<(Key, V)> {
        let inner = self.inner.read();
        inner
            .map
            .range((low.cloned(), high.cloned()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Entries within the bounds plus an observation of **every** node
    /// whose interval intersects the bounds — including nodes that hold no
    /// matching key, so the emptiness of a sub-range is validated too.
    pub fn range_observed(
        &self,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> (Vec<(Key, V)>, Vec<NodeObservation>) {
        let inner = self.inner.read();
        let rows = inner
            .map
            .range((low.cloned(), high.cloned()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let (first, last) = inner.covering(low, high);
        let nodes = (first..=last).map(|i| inner.observe(i)).collect();
        (rows, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn k(i: i64) -> Key {
        Key::Int(i)
    }

    #[test]
    fn lookups_do_not_bump_versions() {
        let idx: VersionedIndex<i64> = VersionedIndex::new();
        idx.insert(&k(1), 10);
        let before = idx.observe(&k(1)).version;
        assert_eq!(idx.get_cloned(&k(1)), Some(10));
        let _ = idx.get_observed(&k(2));
        let _ = idx.range_observed(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(idx.observe(&k(1)).version, before);
    }

    #[test]
    fn structural_insert_invalidates_covering_observation_only() {
        let idx: VersionedIndex<i64> = VersionedIndex::new();
        for i in 0..200 {
            idx.insert(&k(i), i);
        }
        assert!(idx.node_count() > 1, "splits happened");
        let (_, low_obs) = idx.range_observed(Bound::Included(&k(0)), Bound::Included(&k(5)));
        let (_, high_obs) = idx.range_observed(Bound::Included(&k(190)), Bound::Unbounded);
        idx.insert(&k(191_000), 0); // far above: hits the last node only
        assert!(
            low_obs.iter().all(|o| o.is_current()),
            "low range untouched"
        );
        assert!(
            high_obs.iter().any(|o| !o.is_current()),
            "upper range observation invalidated"
        );
    }

    #[test]
    fn range_observes_empty_gaps() {
        let idx: VersionedIndex<i64> = VersionedIndex::new();
        idx.insert(&k(0), 0);
        idx.insert(&k(100), 100);
        let (rows, obs) = idx.range_observed(Bound::Included(&k(10)), Bound::Included(&k(20)));
        assert!(rows.is_empty());
        assert!(!obs.is_empty(), "empty ranges still observe their node");
        idx.insert(&k(15), 15);
        assert!(
            obs.iter().any(|o| !o.is_current()),
            "insert into the observed gap invalidates"
        );
    }

    #[test]
    fn get_or_insert_reports_creation_bump_once() {
        let idx: VersionedIndex<i64> = VersionedIndex::new();
        let (_, bump) = idx.get_or_insert_with(&k(7), || 7);
        let bump = bump.expect("creation is structural");
        assert_eq!(bump.after, bump.before + 1);
        assert_eq!(bump.node.version(), bump.after);
        let (v, again) = idx.get_or_insert_with(&k(7), || 8);
        assert_eq!(v, 7);
        assert!(again.is_none(), "existing keys are not structural");
    }

    #[test]
    fn split_bumps_the_split_node() {
        let idx: VersionedIndex<i64> = VersionedIndex::new();
        let obs = idx.observe(&k(0));
        for i in 0..=(SPLIT_THRESHOLD as i64) {
            idx.insert(&k(i), i);
        }
        assert!(idx.node_count() >= 2);
        assert!(!obs.is_current());
        // Post-split population accounting stays consistent.
        assert_eq!(idx.len(), SPLIT_THRESHOLD + 1);
    }

    #[test]
    fn quiet_updates_skip_plain_changes_but_not_structural_ones() {
        let idx: VersionedIndex<Vec<i64>> = VersionedIndex::new();
        // Creation is structural even when quiet, and reports its bump.
        let bump = idx.update_or_insert(&k(1), false, |_| UpdateOutcome::Changed, || Some(vec![1]));
        assert!(bump.is_some());
        let after_create = idx.observe(&k(1)).version;
        // Quiet in-place change: no bump.
        let bump = idx.update_or_insert(
            &k(1),
            false,
            |v| {
                v.push(2);
                UpdateOutcome::Changed
            },
            || None,
        );
        assert!(bump.is_none());
        assert_eq!(idx.observe(&k(1)).version, after_create);
        // Loud in-place change: bump, reported with exact versions.
        let bump = idx
            .update_or_insert(
                &k(1),
                true,
                |v| {
                    v.push(3);
                    UpdateOutcome::Changed
                },
                || None,
            )
            .expect("loud change bumps");
        assert_eq!(bump.before, after_create);
        assert_eq!(idx.observe(&k(1)).version, after_create + 1);
        // No-op change reported as unchanged: no bump either way.
        idx.update_or_insert(&k(1), true, |_| UpdateOutcome::Unchanged, || None);
        assert_eq!(idx.observe(&k(1)).version, after_create + 1);
        // Entry removal is structural even when quiet.
        let bump = idx.update_or_insert(&k(1), false, |_| UpdateOutcome::Remove, || None);
        assert!(bump.is_some());
        assert_eq!(idx.observe(&k(1)).version, after_create + 2);
        assert!(idx.is_empty());
        // Absent key with a declining insert: nothing happens.
        let bump = idx.update_or_insert(&k(9), true, |_| UpdateOutcome::Changed, || None);
        assert!(bump.is_none() && idx.is_empty());
    }

    #[test]
    fn range_page_walks_the_whole_index_without_bumping() {
        let idx: VersionedIndex<i64> = VersionedIndex::new();
        for i in 0..157 {
            idx.insert(&k(i), i);
        }
        let obs = idx.observe(&k(0));
        let mut seen = Vec::new();
        let mut cursor: Option<Key> = None;
        loop {
            let (page, next) = idx.range_page(cursor.as_ref(), 10);
            assert!(page.len() <= 10);
            seen.extend(page.into_iter().map(|(_, v)| v));
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(seen, (0..157).collect::<Vec<_>>());
        assert!(obs.is_current(), "paging is a pure read");
        // An empty index terminates immediately.
        let empty: VersionedIndex<i64> = VersionedIndex::new();
        let (page, next) = empty.range_page(None, 8);
        assert!(page.is_empty() && next.is_none());
        // A page that exactly drains the index reports exhaustion.
        let (page, next) = idx.range_page(Some(&k(146)), 10);
        assert_eq!(page.len(), 10);
        assert!(next.is_none(), "no keys remain after the last page");
    }

    #[test]
    fn bump_covering_reports_exact_versions() {
        let idx: VersionedIndex<i64> = VersionedIndex::new();
        let obs = idx.observe(&k(5));
        let bump = idx.bump_covering(&k(5));
        assert_eq!(bump.before, obs.version);
        assert_eq!(bump.after, obs.version + 1);
        assert!(!obs.is_current());
    }

    // Replays a random operation sequence against both the versioned index
    // and a model `BTreeMap`, checking after every step that (a) the data
    // agrees with the model, and (b) the covering node's version moved iff
    // the operation was structural (allowing extra bumps only when a split
    // occurred, which is observable through the node count).
    proptest! {
        #[test]
        fn node_versions_track_exactly_the_structural_mutations(
            ops in proptest::collection::vec((0u64..96, 0u64..4), 1..120)
        ) {
            let idx: VersionedIndex<i64> = VersionedIndex::new();
            let mut model: std::collections::BTreeMap<i64, i64> =
                std::collections::BTreeMap::new();
            for (raw_key, op) in ops {
                let key_i = raw_key as i64;
                let key = k(key_i);
                let before = idx.observe(&key);
                let nodes_before = idx.node_count();
                let structural = match op {
                    // Insert-or-replace: always bumps.
                    0 => {
                        idx.insert(&key, key_i);
                        model.insert(key_i, key_i);
                        true
                    }
                    // Remove: structural iff present.
                    1 => {
                        let removed = idx.remove(&key);
                        prop_assert_eq!(removed.is_some(), model.remove(&key_i).is_some());
                        removed.is_some()
                    }
                    // get_or_insert: structural iff absent.
                    2 => {
                        let absent = !model.contains_key(&key_i);
                        let (_, bump) = idx.get_or_insert_with(&key, || key_i);
                        model.entry(key_i).or_insert(key_i);
                        prop_assert_eq!(bump.is_some(), absent);
                        absent
                    }
                    // Pure lookup: never structural.
                    _ => {
                        let got = idx.get_cloned(&key);
                        prop_assert_eq!(got, model.get(&key_i).cloned());
                        false
                    }
                };
                let split = idx.node_count() > nodes_before;
                let version_moved = !before.is_current();
                if structural {
                    prop_assert!(version_moved, "structural op must bump its node");
                } else if !split {
                    prop_assert!(!version_moved, "non-structural op must not bump");
                }
                // Data always agrees with the model.
                let rows = idx.range_cloned(Bound::Unbounded, Bound::Unbounded);
                prop_assert_eq!(rows.len(), model.len());
            }
            // Every key agrees at the end, through both access paths.
            for (key_i, v) in &model {
                prop_assert_eq!(idx.get_cloned(&k(*key_i)), Some(*v));
            }
        }
    }
}
