//! Partitions: the storage owned by one database container.
//!
//! Each container "abstracts a (portion of a) machine with its own storage
//! (main memory)" (§3.1) and holds the relations of every reactor mapped to
//! it. Because reactor states are disjoint by definition (§2.2.2), tables
//! are addressed by the pair *(reactor, relation name)*.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use reactdb_common::{ReactorId, Result, TxnError};

use crate::schema::RelationDef;
use crate::table::Table;

/// The set of tables hosted by one container.
#[derive(Debug, Default)]
pub struct Partition {
    tables: RwLock<HashMap<(ReactorId, String), Arc<Table>>>,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Instantiates the relations of a reactor according to its type's
    /// relation definitions. Called once per reactor at bootstrap (the
    /// "schema creation function" of §2.2.1).
    pub fn create_reactor(&self, reactor: ReactorId, relations: &[RelationDef]) {
        let mut tables = self.tables.write();
        for def in relations {
            let table = Arc::new(
                Table::with_indexes(def.name.clone(), def.schema.clone(), &def.secondary_indexes)
                    .with_owner(reactor),
            );
            tables.insert((reactor, def.name.clone()), table);
        }
    }

    /// Looks up a reactor's relation.
    pub fn table(&self, reactor: ReactorId, relation: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&(reactor, relation.to_owned()))
            .cloned()
            .ok_or_else(|| TxnError::UnknownRelation(format!("{relation} (reactor {reactor})")))
    }

    /// True if the reactor has at least one relation instantiated here.
    pub fn hosts_reactor(&self, reactor: ReactorId) -> bool {
        self.tables.read().keys().any(|(r, _)| *r == reactor)
    }

    /// Names of the relations instantiated for a reactor.
    pub fn relations_of(&self, reactor: ReactorId) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .keys()
            .filter(|(r, _)| *r == reactor)
            .map(|(_, n)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Total number of tables in this partition.
    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }

    /// Every table in this partition, as `(reactor, relation, table)`
    /// triples in deterministic (reactor, relation) order. Used by the
    /// checkpointer to enumerate the state it must capture.
    pub fn tables(&self) -> Vec<(ReactorId, String, Arc<Table>)> {
        let mut all: Vec<(ReactorId, String, Arc<Table>)> = self
            .tables
            .read()
            .iter()
            .map(|((r, n), t)| (*r, n.clone(), Arc::clone(t)))
            .collect();
        all.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, RelationDef, Schema};

    fn defs() -> Vec<RelationDef> {
        vec![
            RelationDef::new(
                "account",
                Schema::of(&[("name", ColumnType::Str)], &["name"]),
            ),
            RelationDef::new(
                "savings",
                Schema::of(
                    &[("cust_id", ColumnType::Int), ("balance", ColumnType::Float)],
                    &["cust_id"],
                ),
            ),
        ]
    }

    #[test]
    fn create_and_lookup() {
        let p = Partition::new();
        p.create_reactor(ReactorId(0), &defs());
        p.create_reactor(ReactorId(1), &defs());
        assert_eq!(p.table_count(), 4);
        assert!(p.hosts_reactor(ReactorId(0)));
        assert!(!p.hosts_reactor(ReactorId(7)));
        let t = p.table(ReactorId(0), "savings").unwrap();
        assert_eq!(t.name(), "savings");
        assert_eq!(
            p.relations_of(ReactorId(1)),
            vec!["account".to_owned(), "savings".to_owned()]
        );
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let p = Partition::new();
        p.create_reactor(ReactorId(0), &defs());
        let err = p.table(ReactorId(0), "orders").unwrap_err();
        assert!(matches!(err, TxnError::UnknownRelation(_)));
        let err = p.table(ReactorId(3), "account").unwrap_err();
        assert!(matches!(err, TxnError::UnknownRelation(_)));
    }

    #[test]
    fn reactor_states_are_disjoint() {
        let p = Partition::new();
        p.create_reactor(ReactorId(0), &defs());
        p.create_reactor(ReactorId(1), &defs());
        let t0 = p.table(ReactorId(0), "account").unwrap();
        let t1 = p.table(ReactorId(1), "account").unwrap();
        t0.load_row(crate::tuple::Tuple::of(["alice"])).unwrap();
        assert_eq!(t0.visible_len(), 1);
        assert_eq!(t1.visible_len(), 0);
    }
}
