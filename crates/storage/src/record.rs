//! Stored records guarded by Silo TID words.
//!
//! A [`Record`] is the unit of versioning for optimistic concurrency
//! control: readers snapshot the TID word, copy the row, and re-check the
//! word (the Silo read protocol); writers lock the word during the commit
//! write phase and install a new version atomically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::tid::TidWord;
use crate::tuple::Tuple;

/// Shared handle to a record. Read and write sets hold these handles so that
/// validation and installation address the exact same physical slot that was
/// read.
pub type RecordRef = Arc<Record>;

/// A stored row plus its concurrency-control metadata.
#[derive(Debug)]
pub struct Record {
    meta: AtomicU64,
    data: RwLock<Tuple>,
}

impl Record {
    /// Creates a record in the *absent* state holding `data` as its
    /// provisional content. Used for inserts: the row only becomes visible
    /// when the inserting transaction commits and installs a present TID.
    pub fn new_absent(data: Tuple) -> RecordRef {
        Arc::new(Self {
            meta: AtomicU64::new(TidWord::absent().raw()),
            data: RwLock::new(data),
        })
    }

    /// Creates a record that is immediately visible with the given TID.
    /// Used by non-transactional bulk loading.
    pub fn new_loaded(data: Tuple, tid: TidWord) -> RecordRef {
        Arc::new(Self {
            meta: AtomicU64::new(tid.raw()),
            data: RwLock::new(data),
        })
    }

    /// Loads the current TID word.
    pub fn tid(&self) -> TidWord {
        TidWord(self.meta.load(Ordering::Acquire))
    }

    /// Performs a consistent (version-stable) read: returns the TID word and
    /// a copy of the row such that the row is guaranteed to correspond to
    /// that version (the word was not locked and did not change while the
    /// row was copied).
    pub fn read_stable(&self) -> (TidWord, Tuple) {
        loop {
            let before = self.tid();
            if before.is_locked() {
                std::hint::spin_loop();
                continue;
            }
            let copy = self.data.read().clone();
            let after = self.tid();
            if !after.is_locked() && after.version() == before.version() {
                return (before, copy);
            }
        }
    }

    /// Reads the row without the version-stability loop. Only safe when the
    /// caller already holds the record lock (commit write phase) or when no
    /// concurrent writers exist (bulk loading, single-threaded tests).
    pub fn read_unguarded(&self) -> Tuple {
        self.data.read().clone()
    }

    /// Attempts to acquire the record lock (commit protocol, phase 1).
    /// Returns `true` on success.
    pub fn try_lock(&self) -> bool {
        let cur = self.meta.load(Ordering::Acquire);
        let word = TidWord(cur);
        if word.is_locked() {
            return false;
        }
        self.meta
            .compare_exchange(
                cur,
                word.locked().raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Spins until the record lock is acquired. Used by tests and the bulk
    /// loader; the commit protocol itself uses bounded [`Record::try_lock`]
    /// retries with deterministic ordering to avoid deadlock.
    pub fn lock(&self) {
        while !self.try_lock() {
            std::hint::spin_loop();
        }
    }

    /// Releases the record lock without changing the version.
    ///
    /// # Panics
    /// Panics (debug assertion) if the record is not locked.
    pub fn unlock(&self) {
        let cur = TidWord(self.meta.load(Ordering::Acquire));
        debug_assert!(cur.is_locked(), "unlock of a record that is not locked");
        self.meta.store(cur.unlocked().raw(), Ordering::Release);
    }

    /// Installs a new version of the row and releases the lock. Must be
    /// called while holding the record lock (commit write phase).
    pub fn install(&self, data: Tuple, tid: TidWord) {
        debug_assert!(self.tid().is_locked(), "install requires the record lock");
        *self.data.write() = data;
        self.meta
            .store(tid.as_present().unlocked().raw(), Ordering::Release);
    }

    /// Marks the record logically deleted with the given commit TID and
    /// releases the lock. Must be called while holding the record lock.
    pub fn install_delete(&self, tid: TidWord) {
        debug_assert!(
            self.tid().is_locked(),
            "install_delete requires the record lock"
        );
        self.meta
            .store(tid.as_absent().unlocked().raw(), Ordering::Release);
    }

    /// True if the record is currently visible (committed, not deleted).
    pub fn is_visible(&self) -> bool {
        !self.tid().is_absent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::Value;

    fn row(v: i64) -> Tuple {
        Tuple::of([Value::Int(v)])
    }

    #[test]
    fn absent_record_is_invisible_until_installed() {
        let r = Record::new_absent(row(1));
        assert!(!r.is_visible());
        r.lock();
        r.install(row(1), TidWord::committed(1, 1));
        assert!(r.is_visible());
        assert_eq!(r.tid().epoch(), 1);
        assert_eq!(r.read_stable().1, row(1));
    }

    #[test]
    fn stable_read_returns_matching_version() {
        let r = Record::new_loaded(row(5), TidWord::committed(1, 1));
        let (tid, data) = r.read_stable();
        assert_eq!(tid.version(), TidWord::committed(1, 1).version());
        assert_eq!(data, row(5));
    }

    #[test]
    fn lock_is_exclusive() {
        let r = Record::new_loaded(row(5), TidWord::committed(1, 1));
        assert!(r.try_lock());
        assert!(!r.try_lock());
        r.unlock();
        assert!(r.try_lock());
        r.unlock();
    }

    #[test]
    fn install_updates_data_and_version() {
        let r = Record::new_loaded(row(5), TidWord::committed(1, 1));
        r.lock();
        r.install(row(9), TidWord::committed(1, 2));
        assert_eq!(r.read_unguarded(), row(9));
        assert!(!r.tid().is_locked());
        assert_eq!(r.tid().sequence(), 2);
    }

    #[test]
    fn install_delete_hides_record() {
        let r = Record::new_loaded(row(5), TidWord::committed(1, 1));
        r.lock();
        r.install_delete(TidWord::committed(1, 2));
        assert!(!r.is_visible());
        assert!(!r.tid().is_locked());
    }

    #[test]
    fn concurrent_readers_never_observe_torn_versions() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let r = Record::new_loaded(
            Tuple::of([Value::Int(0), Value::Int(0)]),
            TidWord::committed(1, 0),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (_, t) = r.read_stable();
                    // Writer always keeps both columns equal; a torn read
                    // would observe a mismatch.
                    assert_eq!(t.at(0), t.at(1));
                }
            })
        };
        for i in 1..500i64 {
            r.lock();
            r.install(
                Tuple::of([Value::Int(i), Value::Int(i)]),
                TidWord::committed(1, i as u64),
            );
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    }
}
