//! In-memory relational record manager for ReactDB-rs.
//!
//! This crate is the storage substrate referenced in §3.1 of the paper:
//! ReactDB "accepts pre-compiled stored procedures ... against a record
//! manager interface". It provides:
//!
//! * [`Schema`]/[`Column`] — relation schemas encapsulated by reactors,
//! * [`Tuple`] — a row of [`reactdb_common::Value`]s,
//! * [`Record`] — a stored row guarded by a Silo-style TID word,
//! * [`VersionedIndex`] — an ordered index whose key space is split into
//!   versioned leaf nodes (Masstree-style), the substrate of phantom-safe
//!   range scans,
//! * [`Table`] — a versioned ordered primary index plus optional secondary
//!   indexes, supporting point reads, range scans and predicate scans, all
//!   returning the node observations the OCC layer validates at commit,
//! * [`Partition`] — the set of tables owned by the reactors mapped to one
//!   database container.
//!
//! Concurrency control policy (read-set/write-set/node-set tracking,
//! validation, commit) lives in `reactdb-txn`; this crate only provides the
//! physical operations and the version metadata they rely on.

pub mod index;
pub mod partition;
pub mod record;
pub mod schema;
pub mod table;
pub mod tid;
pub mod tuple;

pub use index::{IndexNode, NodeBump, NodeObservation, NodeRef, UpdateOutcome, VersionedIndex};
pub use partition::Partition;
pub use record::{Record, RecordRef};
pub use schema::{Column, ColumnType, RelationDef, Schema};
pub use table::{FenceEffect, ReplayError, SecondaryIndexDef, SnapshotChunk, Table};
pub use tid::TidWord;
pub use tuple::{Tuple, TupleDelta};
