//! Blocking wire client for ReactDB-rs with the pipelined-handle feel of
//! the in-process session API.
//!
//! [`WireClient::connect`] opens one TCP connection — which the server maps
//! 1:1 onto an engine `Client` session — performs the version handshake,
//! and spawns a reader thread. [`WireClient::submit`] then sends a request
//! without waiting for its reply and returns a [`WireHandle`]; many may be
//! in flight, and the reader thread matches responses to handles by
//! correlation id, so responses resolve in whatever order the server
//! produces them. The handle API mirrors the in-process `TxnHandle`:
//! [`WireHandle::wait`], [`WireHandle::wait_timeout`],
//! [`WireHandle::try_result`] and [`WireHandle::commit_epoch`], with
//! the acknowledgement level chosen per request at submit time
//! ([`AckLevel`]: validated, durable, or replicated) rather than at wait
//! time — the ack point must ride in the request because it is the
//! *server* that delays the reply.
//!
//! Transport and protocol failures surface as `TxnError::Runtime` through
//! the same `Result<Value>` the in-process API uses, so workload drivers
//! and the history checker run unchanged against either. A connection that
//! dies resolves every outstanding handle with such an error — nothing
//! blocks forever on a lost reply.
//!
//! The wire format itself lives in [`codec`]; this crate depends only on
//! `reactdb-common`, so linking the driver never pulls in the engine.

pub mod codec;

pub use codec::{MetricsFormat, Request, Response, WireError, PROTOCOL_VERSION};
pub use reactdb_common::AckLevel;

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use reactdb_common::{Result, TxnError, Value};

/// How a resolved request ended, as stored in its slot.
#[derive(Debug, Clone)]
enum Outcome {
    /// The transaction committed with this value (and epoch, when known).
    Committed {
        value: Value,
        commit_epoch: Option<u64>,
    },
    /// The transaction aborted with the reconstructed engine error.
    Aborted(TxnError),
    /// A metrics request's rendered text.
    Text(String),
    /// A ping came back.
    Pong,
    /// The request failed below the transaction layer (connection lost,
    /// protocol violation, server-side refusal).
    Failed(String),
}

/// One in-flight request's rendezvous point between the submitting thread
/// and the reader thread.
#[derive(Debug)]
struct Slot {
    state: Mutex<Option<Outcome>>,
    resolved: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(None),
            resolved: Condvar::new(),
        })
    }

    fn resolve(&self, outcome: Outcome) {
        let mut state = self.state.lock().unwrap();
        if state.is_none() {
            *state = Some(outcome);
            self.resolved.notify_all();
        }
    }

    fn wait(&self) -> Outcome {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.resolved.wait(state).unwrap();
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(outcome) = state.as_ref() {
                return Some(outcome.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.resolved.wait_timeout(state, deadline - now).unwrap();
            state = guard;
        }
    }

    fn try_get(&self) -> Option<Outcome> {
        self.state.lock().unwrap().clone()
    }
}

struct Shared {
    /// Write half; submissions serialize frame writes through this lock.
    writer: Mutex<TcpStream>,
    /// Unresolved requests by correlation id.
    pending: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Set once when the connection dies; the reason every later submit
    /// and every then-outstanding handle reports.
    dead: Mutex<Option<String>>,
    next_id: AtomicU64,
}

impl Shared {
    /// Marks the connection dead and resolves every outstanding handle, so
    /// no waiter blocks on a reply that will never arrive.
    fn fail_all(&self, reason: &str) {
        {
            let mut dead = self.dead.lock().unwrap();
            if dead.is_none() {
                *dead = Some(reason.to_string());
            }
        }
        let drained: Vec<Arc<Slot>> = self
            .pending
            .lock()
            .unwrap()
            .drain()
            .map(|(_, s)| s)
            .collect();
        for slot in drained {
            slot.resolve(Outcome::Failed(reason.to_string()));
        }
    }
}

/// A blocking, pipelined connection to a `reactdb-server`.
///
/// Cheap to clone (all clones share the connection); dropping the last
/// clone shuts the socket down and joins the reader thread.
pub struct WireClient {
    shared: Arc<Shared>,
    /// Owned by the last clone; used to unblock and join the reader.
    lifecycle: Arc<Lifecycle>,
}

impl Clone for WireClient {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            lifecycle: Arc::clone(&self.lifecycle),
        }
    }
}

struct Lifecycle {
    stream: TcpStream,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for Lifecycle {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(handle) = self.reader.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl WireClient {
    /// Connects, performs the protocol-version handshake, and starts the
    /// reader thread. Handshake failures (magic, version) surface as
    /// `io::Error` with the [`WireError`] rendered in the message.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&codec::client_hello())?;
        let mut hello = [0u8; codec::HANDSHAKE_LEN];
        stream.read_exact(&mut hello)?;
        codec::parse_server_hello(&hello).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::ConnectionRefused, e.to_string())
        })?;

        let shared = Arc::new(Shared {
            writer: Mutex::new(stream.try_clone()?),
            pending: Mutex::new(HashMap::new()),
            dead: Mutex::new(None),
            next_id: AtomicU64::new(1),
        });
        let reader_shared = Arc::clone(&shared);
        let reader_stream = stream.try_clone()?;
        let reader = std::thread::Builder::new()
            .name("reactdb-wire-reader".into())
            .spawn(move || read_loop(reader_stream, reader_shared))?;
        Ok(Self {
            shared,
            lifecycle: Arc::new(Lifecycle {
                stream,
                reader: Mutex::new(Some(reader)),
            }),
        })
    }

    fn send(&self, req: &Request) -> Result<Arc<Slot>> {
        if let Some(reason) = self.shared.dead.lock().unwrap().as_ref() {
            return Err(TxnError::Runtime(format!("wire client: {reason}")));
        }
        let slot = Slot::new();
        self.shared
            .pending
            .lock()
            .unwrap()
            .insert(req.correlation_id(), Arc::clone(&slot));
        let framed = codec::frame(&codec::encode_request(req));
        let write_result = {
            let mut writer = self.shared.writer.lock().unwrap();
            writer.write_all(&framed)
        };
        if let Err(e) = write_result {
            let reason = format!("write failed: {e}");
            // Killing the socket unblocks the reader, which fails the rest.
            let _ = self.lifecycle.stream.shutdown(Shutdown::Both);
            self.shared.fail_all(&reason);
            return Err(TxnError::Runtime(format!("wire client: {reason}")));
        }
        Ok(slot)
    }

    fn next_id(&self) -> u64 {
        self.shared.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Submits a root transaction without waiting, acknowledged at
    /// validation time. Returns a handle; many may be in flight.
    pub fn submit(&self, reactor: &str, procedure: &str, args: Vec<Value>) -> Result<WireHandle> {
        self.submit_with_ack(reactor, procedure, args, AckLevel::Validated)
    }

    /// Submits a root transaction acknowledged only once its commit epoch
    /// is durable on the server (the SiloR rule).
    ///
    /// Thin wrapper over [`WireClient::submit_with_ack`] with
    /// [`AckLevel::Durable`]; prefer the explicit-level form in new code.
    pub fn submit_durable(
        &self,
        reactor: &str,
        procedure: &str,
        args: Vec<Value>,
    ) -> Result<WireHandle> {
        self.submit_with_ack(reactor, procedure, args, AckLevel::Durable)
    }

    /// Submits with an explicit acknowledgement level.
    pub fn submit_with_ack(
        &self,
        reactor: &str,
        procedure: &str,
        args: Vec<Value>,
        ack: AckLevel,
    ) -> Result<WireHandle> {
        let slot = self.send(&Request::Invoke {
            correlation_id: self.next_id(),
            ack,
            reactor: reactor.to_string(),
            procedure: procedure.to_string(),
            args,
        })?;
        Ok(WireHandle { slot })
    }

    /// Submit-and-wait convenience, validation-time acknowledgement.
    pub fn invoke(&self, reactor: &str, procedure: &str, args: Vec<Value>) -> Result<Value> {
        self.submit(reactor, procedure, args)?.wait()
    }

    /// Submit-and-wait convenience with an explicit acknowledgement
    /// level.
    pub fn invoke_with(
        &self,
        reactor: &str,
        procedure: &str,
        args: Vec<Value>,
        ack: AckLevel,
    ) -> Result<Value> {
        self.submit_with_ack(reactor, procedure, args, ack)?.wait()
    }

    /// Submit-and-wait convenience, durable acknowledgement.
    ///
    /// Thin wrapper over [`WireClient::invoke_with`] with
    /// [`AckLevel::Durable`]; prefer the explicit-level form in new code.
    pub fn invoke_durable(
        &self,
        reactor: &str,
        procedure: &str,
        args: Vec<Value>,
    ) -> Result<Value> {
        self.submit_durable(reactor, procedure, args)?.wait()
    }

    /// Fetches the server's metrics snapshot rendered as Prometheus text.
    pub fn metrics_prometheus(&self) -> Result<String> {
        self.metrics(MetricsFormat::Prometheus)
    }

    /// Fetches the server's metrics snapshot rendered as JSON.
    pub fn metrics_json(&self) -> Result<String> {
        self.metrics(MetricsFormat::Json)
    }

    fn metrics(&self, format: MetricsFormat) -> Result<String> {
        let slot = self.send(&Request::Metrics {
            correlation_id: self.next_id(),
            format,
        })?;
        match slot.wait() {
            Outcome::Text(text) => Ok(text),
            Outcome::Failed(reason) => Err(TxnError::Runtime(format!("wire client: {reason}"))),
            other => Err(TxnError::Runtime(format!(
                "wire client: unexpected reply to metrics request: {other:?}"
            ))),
        }
    }

    /// Round-trips a liveness probe.
    pub fn ping(&self) -> Result<()> {
        let slot = self.send(&Request::Ping {
            correlation_id: self.next_id(),
        })?;
        match slot.wait() {
            Outcome::Pong => Ok(()),
            Outcome::Failed(reason) => Err(TxnError::Runtime(format!("wire client: {reason}"))),
            other => Err(TxnError::Runtime(format!(
                "wire client: unexpected reply to ping: {other:?}"
            ))),
        }
    }

    /// True once the connection has failed; every subsequent submit will
    /// return the stored reason.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.lock().unwrap().is_some()
    }
}

/// Handle to one in-flight wire transaction, mirroring the in-process
/// `TxnHandle` surface.
pub struct WireHandle {
    slot: Arc<Slot>,
}

impl WireHandle {
    fn interpret(outcome: Outcome) -> Result<Value> {
        match outcome {
            Outcome::Committed { value, .. } => Ok(value),
            Outcome::Aborted(error) => Err(error),
            Outcome::Failed(reason) => Err(TxnError::Runtime(format!("wire client: {reason}"))),
            other => Err(TxnError::Runtime(format!(
                "wire client: unexpected reply to invoke: {other:?}"
            ))),
        }
    }

    /// Blocks until the server replies. With [`AckLevel::Validated`] the
    /// reply arrives at validation time; with [`AckLevel::Durable`] only
    /// once the commit epoch is durable; with [`AckLevel::Replicated`]
    /// only once a follower has durably applied it too.
    pub fn wait(&self) -> Result<Value> {
        Self::interpret(self.slot.wait())
    }

    /// [`wait`](Self::wait) with a deadline; `None` on timeout (the request
    /// stays in flight and may still resolve later).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Value>> {
        self.slot.wait_timeout(timeout).map(Self::interpret)
    }

    /// Polls without blocking.
    pub fn try_result(&self) -> Option<Result<Value>> {
        self.slot.try_get().map(Self::interpret)
    }

    /// True once a reply (or connection failure) has resolved this handle.
    pub fn is_resolved(&self) -> bool {
        self.slot.try_get().is_some()
    }

    /// The epoch the transaction committed in, once resolved and when the
    /// server reported one. `None` while in flight or after an abort.
    pub fn commit_epoch(&self) -> Option<u64> {
        match self.slot.try_get() {
            Some(Outcome::Committed { commit_epoch, .. }) => commit_epoch,
            _ => None,
        }
    }
}

/// Reader thread: accumulates bytes, peels frames, decodes responses and
/// resolves the matching slots. Exits — failing all outstanding handles —
/// on EOF, read error, or the first malformed frame.
fn read_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete frame currently buffered.
        loop {
            match codec::decode_frame(&buf) {
                Ok(None) => break,
                Ok(Some((payload, consumed))) => {
                    let response = match codec::decode_response(payload) {
                        Ok(r) => r,
                        Err(e) => {
                            shared.fail_all(&format!("protocol error: {e}"));
                            return;
                        }
                    };
                    buf.drain(..consumed);
                    dispatch(&shared, response);
                }
                Err(e) => {
                    shared.fail_all(&format!("protocol error: {e}"));
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                shared.fail_all("connection closed by server");
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => {
                shared.fail_all(&format!("read failed: {e}"));
                return;
            }
        }
    }
}

fn dispatch(shared: &Shared, response: Response) {
    let slot = shared
        .pending
        .lock()
        .unwrap()
        .remove(&response.correlation_id());
    // A response for an id we never issued (or already resolved) is
    // dropped: the server is the authority on completion, and strictness
    // here would kill a connection that is otherwise healthy.
    let Some(slot) = slot else { return };
    let outcome = match response {
        Response::TxnOk {
            value,
            commit_epoch,
            ..
        } => Outcome::Committed {
            value,
            commit_epoch,
        },
        Response::TxnErr { error, .. } => Outcome::Aborted(error),
        Response::MetricsText { text, .. } => Outcome::Text(text),
        Response::Pong { .. } => Outcome::Pong,
        Response::ServerError { message, .. } => {
            Outcome::Failed(format!("server error: {message}"))
        }
        // Replication-stream frames only flow on subscribed connections,
        // which a follower drives with its own raw stream loop — an
        // ordinary client treats a stray one as a server error.
        Response::ReplFile { .. } | Response::ReplEpoch { .. } | Response::ReplEnd { .. } => {
            Outcome::Failed("unexpected replication frame on a client connection".into())
        }
    };
    slot.resolve(outcome);
}
