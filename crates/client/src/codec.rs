//! The ReactDB wire format: length-prefixed, CRC-checksummed frames carrying
//! tag-encoded requests and responses.
//!
//! Layout, outermost first:
//!
//! * **Handshake** — before any frame, the client sends 8 bytes: the magic
//!   `RDBP`, its protocol version (`u16` LE) and a flags word (`u16` LE,
//!   currently zero). The server answers with the same 8-byte shape where
//!   the flags word is a status: `0` accepts, `1` rejects the version. A
//!   rejected client gets the server's version echoed back so it can report
//!   both sides of the mismatch.
//! * **Frame** — `[len: u32 LE][crc32: u32 LE][payload: len bytes]`. `len`
//!   counts only the payload and is capped at [`MAX_FRAME_LEN`]; the CRC
//!   (IEEE 802.3 polynomial) covers only the payload. The length is
//!   validated *before* any buffering decision and the checksum before any
//!   payload decode, so a corrupt or hostile frame is rejected without
//!   over-allocating.
//! * **Payload** — `[kind: u8][correlation_id: u64 LE][body]`. The
//!   correlation id is chosen by the client and echoed verbatim in the
//!   response, which is what makes pipelining work: many requests may be in
//!   flight per connection and responses may be matched out of order.
//!
//! Bodies use two primitives: strings are `u32 LE` length followed by UTF-8
//! bytes, and [`Value`]s are a tag byte (`0` null, `1` int, `2` float as
//! IEEE-754 bits, `3` string, `4` bool) followed by the payload. A
//! [`TxnError`] is a code byte followed by the variant's string fields, so
//! the client reconstructs the *exact* engine error — retry classification
//! (`is_cc_abort`, `is_user_abort`, ...) works identically on both sides of
//! the wire.
//!
//! Every decode path is total: malformed input yields a [`WireError`],
//! never a panic, and string/argument lengths are checked against the bytes
//! actually present before any allocation.

use reactdb_common::{AckLevel, TxnError, Value};

/// Magic bytes opening both handshake directions.
pub const MAGIC: [u8; 4] = *b"RDBP";

/// Protocol version this build speaks. Bump on any incompatible layout
/// change; the handshake rejects mismatches instead of misparsing frames.
/// v2: the invoke ack byte becomes an [`AckLevel`] tag (adding
/// `replicated`) and the replication stream messages
/// ([`Request::ReplSubscribe`]/[`Request::ReplAck`],
/// [`Response::ReplFile`]/[`Response::ReplEpoch`]/[`Response::ReplEnd`])
/// join the kind space.
/// v3: [`Request::ReplSubscribe`] carries the follower's stable
/// `follower_id`, the key of the primary's per-follower quorum-ack
/// registry.
pub const PROTOCOL_VERSION: u16 = 3;

/// Handshake message size in bytes, both directions.
pub const HANDSHAKE_LEN: usize = 8;

/// Frame header size: `u32` payload length plus `u32` CRC.
pub const FRAME_HEADER_LEN: usize = 8;

/// Hard cap on a frame's payload length (1 MiB). A header announcing more
/// is rejected before any buffering, bounding per-connection memory.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Hard cap on the number of procedure arguments in one invoke.
pub const MAX_ARGS: usize = 1024;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, as used in the frame header.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

/// Everything that can go wrong turning bytes into messages. A connection
/// that produces any of these is killed; other connections are unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the body it announced was complete.
    Truncated,
    /// A frame header announced a payload longer than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The announced payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The payload's CRC did not match the frame header.
    BadChecksum {
        /// CRC stored in the header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// A handshake did not start with [`MAGIC`].
    BadMagic,
    /// The peer speaks an incompatible protocol version.
    VersionMismatch {
        /// Version offered by the client.
        client: u16,
        /// Version the server speaks.
        server: u16,
    },
    /// The server refused the handshake for a non-version reason.
    HandshakeRejected,
    /// The payload's kind byte names no known message.
    UnknownKind(u8),
    /// A tag byte inside a body names no known alternative.
    UnknownTag {
        /// Which tagged union was being decoded (for diagnostics).
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// The body decoded completely but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        count: usize,
    },
    /// A structural constraint was violated (bad UTF-8, too many args, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated mid-message"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
            WireError::BadMagic => write!(f, "handshake does not start with RDBP magic"),
            WireError::VersionMismatch { client, server } => {
                write!(
                    f,
                    "protocol version mismatch: client v{client}, server v{server}"
                )
            }
            WireError::HandshakeRejected => write!(f, "server rejected the handshake"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete message body")
            }
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Message types.
// ---------------------------------------------------------------------------

/// Rendering requested by a metrics op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition of the `MetricsSnapshot`.
    Prometheus,
    /// The snapshot's JSON rendering.
    Json,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one root transaction: `procedure` on `reactor` with `args`.
    Invoke {
        /// Client-chosen id echoed in the response.
        correlation_id: u64,
        /// When to acknowledge: validation, local durability, or
        /// replicated durability (see [`AckLevel`]).
        ack: AckLevel,
        /// Target reactor name.
        reactor: String,
        /// Registered procedure name on the reactor's type.
        procedure: String,
        /// Procedure arguments, at most [`MAX_ARGS`].
        args: Vec<Value>,
    },
    /// Render the server's metrics snapshot (`GET /metrics` equivalent).
    Metrics {
        /// Client-chosen id echoed in the response.
        correlation_id: u64,
        /// Requested rendering.
        format: MetricsFormat,
    },
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping {
        /// Client-chosen id echoed in the response.
        correlation_id: u64,
    },
    /// Subscribe this connection as a replication follower: the server
    /// repurposes the connection into a one-way shipping stream of
    /// [`Response::ReplFile`]/[`Response::ReplEpoch`] frames (checkpoint
    /// files first, then live log-segment bytes), interleaved with
    /// [`Request::ReplAck`] frames flowing back.
    ReplSubscribe {
        /// Client-chosen id echoed in stream-fatal [`Response::ReplEnd`].
        correlation_id: u64,
        /// Durable epoch the follower has already applied (`0` for a
        /// fresh follower wanting the full checkpoint + log bootstrap).
        from_epoch: u64,
        /// Stable identity of the subscribing follower, constant across
        /// its reconnects (a hash of its staging directory and process).
        /// The primary tracks acked epochs per follower id, so a
        /// resubscribe continues the same registry entry instead of
        /// counting as a second follower toward the replicated-ack
        /// quorum.
        follower_id: u64,
    },
    /// Follower → primary on a subscribed connection: the follower has
    /// durably applied every shipped commit with epoch `<= applied_epoch`.
    /// Feeds the primary's `AckLevel::Replicated` gate.
    ReplAck {
        /// Correlation id of the originating subscription.
        correlation_id: u64,
        /// Highest epoch durably applied by the follower.
        applied_epoch: u64,
    },
}

impl Request {
    /// The correlation id carried by any request kind.
    pub fn correlation_id(&self) -> u64 {
        match self {
            Request::Invoke { correlation_id, .. }
            | Request::Metrics { correlation_id, .. }
            | Request::Ping { correlation_id }
            | Request::ReplSubscribe { correlation_id, .. }
            | Request::ReplAck { correlation_id, .. } => *correlation_id,
        }
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The invoke committed. `commit_epoch` is present when the engine
    /// reported one (always, under epoch durability).
    TxnOk {
        /// Echo of the request's correlation id.
        correlation_id: u64,
        /// The procedure's return value.
        value: Value,
        /// Epoch the transaction committed in, if known.
        commit_epoch: Option<u64>,
    },
    /// The invoke aborted; the exact engine error, reconstructed.
    TxnErr {
        /// Echo of the request's correlation id.
        correlation_id: u64,
        /// The engine error, with full variant fidelity.
        error: TxnError,
    },
    /// Rendered metrics text for a [`Request::Metrics`].
    MetricsText {
        /// Echo of the request's correlation id.
        correlation_id: u64,
        /// Prometheus or JSON text, per the requested format.
        text: String,
    },
    /// Answer to a [`Request::Ping`].
    Pong {
        /// Echo of the request's correlation id.
        correlation_id: u64,
    },
    /// The server could not process the request (shutting down, overload);
    /// distinct from a transaction abort.
    ServerError {
        /// Echo of the request's correlation id.
        correlation_id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Replication stream: a chunk of a log-dir file (checkpoint part,
    /// manifest, or log segment) at a byte offset. The follower appends
    /// or overwrites at exactly that offset, so re-shipping is idempotent.
    ReplFile {
        /// Echo of the subscription's correlation id.
        correlation_id: u64,
        /// File name relative to the primary's log dir.
        name: String,
        /// Byte offset of this chunk within the file.
        offset: u64,
        /// The chunk bytes.
        bytes: Vec<u8>,
    },
    /// Replication stream: every shipped byte so far belongs to a commit
    /// with epoch `<= epoch`, and that epoch is durable on the primary.
    /// The follower may apply through `epoch` and then [`Request::ReplAck`]
    /// it.
    ReplEpoch {
        /// Echo of the subscription's correlation id.
        correlation_id: u64,
        /// The primary's shipped durable epoch.
        epoch: u64,
    },
    /// Replication stream: the primary is ending the stream (shutdown,
    /// truncation race, error). The follower should reconnect and
    /// resubscribe — or, if the primary is gone for good, promote.
    ReplEnd {
        /// Echo of the subscription's correlation id.
        correlation_id: u64,
        /// Human-readable reason.
        reason: String,
    },
}

impl Response {
    /// The correlation id carried by any response kind.
    pub fn correlation_id(&self) -> u64 {
        match self {
            Response::TxnOk { correlation_id, .. }
            | Response::TxnErr { correlation_id, .. }
            | Response::MetricsText { correlation_id, .. }
            | Response::Pong { correlation_id }
            | Response::ServerError { correlation_id, .. }
            | Response::ReplFile { correlation_id, .. }
            | Response::ReplEpoch { correlation_id, .. }
            | Response::ReplEnd { correlation_id, .. } => *correlation_id,
        }
    }
}

const KIND_INVOKE: u8 = 0x01;
const KIND_METRICS: u8 = 0x02;
const KIND_PING: u8 = 0x03;
const KIND_REPL_SUBSCRIBE: u8 = 0x04;
const KIND_REPL_ACK: u8 = 0x05;
const KIND_TXN_OK: u8 = 0x81;
const KIND_TXN_ERR: u8 = 0x82;
const KIND_METRICS_TEXT: u8 = 0x83;
const KIND_PONG: u8 = 0x84;
const KIND_SERVER_ERROR: u8 = 0x85;
const KIND_REPL_FILE: u8 = 0x86;
const KIND_REPL_EPOCH: u8 = 0x87;
const KIND_REPL_END: u8 = 0x88;

// ---------------------------------------------------------------------------
// Handshake.
// ---------------------------------------------------------------------------

/// The 8-byte hello a client sends immediately after connecting.
pub fn client_hello() -> [u8; HANDSHAKE_LEN] {
    let mut b = [0u8; HANDSHAKE_LEN];
    b[..4].copy_from_slice(&MAGIC);
    b[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    // Bytes 6..8: flags, reserved as zero in v1.
    b
}

/// The 8-byte reply a server sends: status `0` accepts, `1` rejects the
/// client's version (the server's own version rides in bytes 4..6 either
/// way, so a rejected client can name both sides of the mismatch).
pub fn server_hello(accept: bool) -> [u8; HANDSHAKE_LEN] {
    let mut b = [0u8; HANDSHAKE_LEN];
    b[..4].copy_from_slice(&MAGIC);
    b[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    b[6..8].copy_from_slice(&u16::from(!accept).to_le_bytes());
    b
}

/// Server side: validates a client hello and returns the client's version.
/// `Ok` means magic and version both match this build.
pub fn parse_client_hello(b: &[u8; HANDSHAKE_LEN]) -> Result<u16, WireError> {
    if b[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([b[4], b[5]]);
    if version != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            client: version,
            server: PROTOCOL_VERSION,
        });
    }
    Ok(version)
}

/// Client side: validates a server hello.
pub fn parse_server_hello(b: &[u8; HANDSHAKE_LEN]) -> Result<(), WireError> {
    if b[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let server_version = u16::from_le_bytes([b[4], b[5]]);
    let status = u16::from_le_bytes([b[6], b[7]]);
    match status {
        0 => Ok(()),
        1 => Err(WireError::VersionMismatch {
            client: PROTOCOL_VERSION,
            server: server_version,
        }),
        _ => Err(WireError::HandshakeRejected),
    }
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// Wraps a payload in a frame header (length + CRC).
///
/// # Panics
/// Panics if the payload exceeds [`MAX_FRAME_LEN`] — encoders bound their
/// output (argument and string caps), so this is a programming error.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload of {} bytes exceeds the cap",
        payload.len()
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Tries to extract one frame from the front of a receive buffer.
///
/// Returns `Ok(None)` when more bytes are needed, `Ok(Some((payload,
/// consumed)))` when a whole checksummed frame is present (`consumed` is
/// header plus payload — the caller drains that many bytes), and `Err` for
/// an oversized length or checksum mismatch. Decides from the 8-byte header
/// alone whether the announced length is acceptable, so a hostile length
/// never causes buffering beyond [`MAX_FRAME_LEN`].
pub fn decode_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    let actual = crc32(payload);
    if actual != expected {
        return Err(WireError::BadChecksum { expected, actual });
    }
    Ok(Some((payload, total)))
}

// ---------------------------------------------------------------------------
// Body primitives.
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Length-prefixed UTF-8 string. The announced length is checked
    /// against the bytes actually present *before* allocating, so a
    /// hostile length cannot cause over-allocation.
    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("invalid utf-8"))
    }

    fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            3 => Ok(Value::Str(self.string()?)),
            4 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(WireError::Malformed("boolean byte not 0 or 1")),
            },
            tag => Err(WireError::UnknownTag { what: "value", tag }),
        }
    }

    fn txn_error(&mut self) -> Result<TxnError, WireError> {
        match self.u8()? {
            0 => Ok(TxnError::UserAbort(self.string()?)),
            1 => Ok(TxnError::ValidationFailed),
            2 => Ok(TxnError::Phantom),
            3 => Ok(TxnError::CommitAborted),
            4 => Ok(TxnError::DangerousStructure {
                reactor: self.string()?,
            }),
            5 => Ok(TxnError::UnknownReactor(self.string()?)),
            6 => Ok(TxnError::UnknownProcedure {
                reactor_type: self.string()?,
                procedure: self.string()?,
            }),
            7 => Ok(TxnError::UnknownRelation(self.string()?)),
            8 => Ok(TxnError::UnknownColumn {
                relation: self.string()?,
                column: self.string()?,
            }),
            9 => Ok(TxnError::DuplicateKey {
                relation: self.string()?,
                key: self.string()?,
            }),
            10 => Ok(TxnError::NotFound {
                relation: self.string()?,
                key: self.string()?,
            }),
            11 => Ok(TxnError::Runtime(self.string()?)),
            12 => Ok(TxnError::BadArguments(self.string()?)),
            tag => Err(WireError::UnknownTag {
                what: "txn error",
                tag,
            }),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                count: self.remaining(),
            });
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&(*i as u64).to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_string(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(u8::from(*b));
        }
    }
}

fn put_txn_error(out: &mut Vec<u8>, e: &TxnError) {
    match e {
        TxnError::UserAbort(msg) => {
            out.push(0);
            put_string(out, msg);
        }
        TxnError::ValidationFailed => out.push(1),
        TxnError::Phantom => out.push(2),
        TxnError::CommitAborted => out.push(3),
        TxnError::DangerousStructure { reactor } => {
            out.push(4);
            put_string(out, reactor);
        }
        TxnError::UnknownReactor(name) => {
            out.push(5);
            put_string(out, name);
        }
        TxnError::UnknownProcedure {
            reactor_type,
            procedure,
        } => {
            out.push(6);
            put_string(out, reactor_type);
            put_string(out, procedure);
        }
        TxnError::UnknownRelation(name) => {
            out.push(7);
            put_string(out, name);
        }
        TxnError::UnknownColumn { relation, column } => {
            out.push(8);
            put_string(out, relation);
            put_string(out, column);
        }
        TxnError::DuplicateKey { relation, key } => {
            out.push(9);
            put_string(out, relation);
            put_string(out, key);
        }
        TxnError::NotFound { relation, key } => {
            out.push(10);
            put_string(out, relation);
            put_string(out, key);
        }
        TxnError::Runtime(msg) => {
            out.push(11);
            put_string(out, msg);
        }
        TxnError::BadArguments(msg) => {
            out.push(12);
            put_string(out, msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Request encode/decode.
// ---------------------------------------------------------------------------

/// Encodes a request payload (no frame header; pass through [`frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match req {
        Request::Invoke {
            correlation_id,
            ack,
            reactor,
            procedure,
            args,
        } => {
            out.push(KIND_INVOKE);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            out.push(ack.wire_tag());
            put_string(&mut out, reactor);
            put_string(&mut out, procedure);
            assert!(args.len() <= MAX_ARGS, "too many procedure arguments");
            out.extend_from_slice(&(args.len() as u16).to_le_bytes());
            for arg in args {
                put_value(&mut out, arg);
            }
        }
        Request::Metrics {
            correlation_id,
            format,
        } => {
            out.push(KIND_METRICS);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            out.push(match format {
                MetricsFormat::Prometheus => 0,
                MetricsFormat::Json => 1,
            });
        }
        Request::Ping { correlation_id } => {
            out.push(KIND_PING);
            out.extend_from_slice(&correlation_id.to_le_bytes());
        }
        Request::ReplSubscribe {
            correlation_id,
            from_epoch,
            follower_id,
        } => {
            out.push(KIND_REPL_SUBSCRIBE);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            out.extend_from_slice(&from_epoch.to_le_bytes());
            out.extend_from_slice(&follower_id.to_le_bytes());
        }
        Request::ReplAck {
            correlation_id,
            applied_epoch,
        } => {
            out.push(KIND_REPL_ACK);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            out.extend_from_slice(&applied_epoch.to_le_bytes());
        }
    }
    out
}

/// Decodes a request payload (the frame's checksummed contents).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    let correlation_id = c.u64()?;
    let req = match kind {
        KIND_INVOKE => {
            let tag = c.u8()?;
            let ack = AckLevel::from_wire_tag(tag).ok_or(WireError::UnknownTag {
                what: "ack level",
                tag,
            })?;
            let reactor = c.string()?;
            let procedure = c.string()?;
            let argc = c.u16()? as usize;
            if argc > MAX_ARGS {
                return Err(WireError::Malformed("argument count exceeds cap"));
            }
            // Each value takes at least one byte, so an argc beyond the
            // bytes present is truncation — caught before allocating.
            if argc > c.remaining() {
                return Err(WireError::Truncated);
            }
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(c.value()?);
            }
            Request::Invoke {
                correlation_id,
                ack,
                reactor,
                procedure,
                args,
            }
        }
        KIND_METRICS => {
            let format = match c.u8()? {
                0 => MetricsFormat::Prometheus,
                1 => MetricsFormat::Json,
                tag => {
                    return Err(WireError::UnknownTag {
                        what: "metrics format",
                        tag,
                    })
                }
            };
            Request::Metrics {
                correlation_id,
                format,
            }
        }
        KIND_PING => Request::Ping { correlation_id },
        KIND_REPL_SUBSCRIBE => Request::ReplSubscribe {
            correlation_id,
            from_epoch: c.u64()?,
            follower_id: c.u64()?,
        },
        KIND_REPL_ACK => Request::ReplAck {
            correlation_id,
            applied_epoch: c.u64()?,
        },
        kind => return Err(WireError::UnknownKind(kind)),
    };
    c.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Response encode/decode.
// ---------------------------------------------------------------------------

/// Encodes a response payload (no frame header; pass through [`frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match resp {
        Response::TxnOk {
            correlation_id,
            value,
            commit_epoch,
        } => {
            out.push(KIND_TXN_OK);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            put_value(&mut out, value);
            match commit_epoch {
                Some(epoch) => {
                    out.push(1);
                    out.extend_from_slice(&epoch.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        Response::TxnErr {
            correlation_id,
            error,
        } => {
            out.push(KIND_TXN_ERR);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            put_txn_error(&mut out, error);
        }
        Response::MetricsText {
            correlation_id,
            text,
        } => {
            out.push(KIND_METRICS_TEXT);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            put_string(&mut out, text);
        }
        Response::Pong { correlation_id } => {
            out.push(KIND_PONG);
            out.extend_from_slice(&correlation_id.to_le_bytes());
        }
        Response::ServerError {
            correlation_id,
            message,
        } => {
            out.push(KIND_SERVER_ERROR);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            put_string(&mut out, message);
        }
        Response::ReplFile {
            correlation_id,
            name,
            offset,
            bytes,
        } => {
            out.push(KIND_REPL_FILE);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            put_string(&mut out, name);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        Response::ReplEpoch {
            correlation_id,
            epoch,
        } => {
            out.push(KIND_REPL_EPOCH);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::ReplEnd {
            correlation_id,
            reason,
        } => {
            out.push(KIND_REPL_END);
            out.extend_from_slice(&correlation_id.to_le_bytes());
            put_string(&mut out, reason);
        }
    }
    out
}

/// Decodes a response payload (the frame's checksummed contents).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    let correlation_id = c.u64()?;
    let resp = match kind {
        KIND_TXN_OK => {
            let value = c.value()?;
            let commit_epoch = match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                _ => return Err(WireError::Malformed("epoch flag byte not 0 or 1")),
            };
            Response::TxnOk {
                correlation_id,
                value,
                commit_epoch,
            }
        }
        KIND_TXN_ERR => Response::TxnErr {
            correlation_id,
            error: c.txn_error()?,
        },
        KIND_METRICS_TEXT => Response::MetricsText {
            correlation_id,
            text: c.string()?,
        },
        KIND_PONG => Response::Pong { correlation_id },
        KIND_SERVER_ERROR => Response::ServerError {
            correlation_id,
            message: c.string()?,
        },
        KIND_REPL_FILE => {
            let name = c.string()?;
            let offset = c.u64()?;
            let len = c.u32()? as usize;
            if len > c.remaining() {
                return Err(WireError::Truncated);
            }
            Response::ReplFile {
                correlation_id,
                name,
                offset,
                bytes: c.take(len)?.to_vec(),
            }
        }
        KIND_REPL_EPOCH => Response::ReplEpoch {
            correlation_id,
            epoch: c.u64()?,
        },
        KIND_REPL_END => Response::ReplEnd {
            correlation_id,
            reason: c.string()?,
        },
        kind => return Err(WireError::UnknownKind(kind)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello reactdb".to_vec();
        let framed = frame(&payload);
        let (got, consumed) = decode_frame(&framed).unwrap().unwrap();
        assert_eq!(got, &payload[..]);
        assert_eq!(consumed, framed.len());
        // A partial header or partial payload asks for more bytes.
        assert_eq!(decode_frame(&framed[..4]).unwrap(), None);
        assert_eq!(decode_frame(&framed[..framed.len() - 1]).unwrap(), None);
    }

    #[test]
    fn oversized_length_rejected_from_header_alone() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&buf),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut framed = frame(b"payload");
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&framed),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn handshake_roundtrip_and_version_gate() {
        assert_eq!(parse_client_hello(&client_hello()), Ok(PROTOCOL_VERSION));
        assert_eq!(parse_server_hello(&server_hello(true)), Ok(()));
        assert!(matches!(
            parse_server_hello(&server_hello(false)),
            Err(WireError::VersionMismatch { .. })
        ));
        let mut bad = client_hello();
        bad[0] = b'X';
        assert_eq!(parse_client_hello(&bad), Err(WireError::BadMagic));
        let mut future = client_hello();
        future[4..6].copy_from_slice(&(PROTOCOL_VERSION + 7).to_le_bytes());
        assert!(matches!(
            parse_client_hello(&future),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn request_roundtrip_all_kinds() {
        let reqs = vec![
            Request::Invoke {
                correlation_id: 42,
                ack: AckLevel::Durable,
                reactor: "acct-7".into(),
                procedure: "transfer".into(),
                args: vec![
                    Value::Int(-5),
                    Value::Float(2.5),
                    Value::Str("memo".into()),
                    Value::Bool(true),
                    Value::Null,
                ],
            },
            Request::Metrics {
                correlation_id: 1,
                format: MetricsFormat::Prometheus,
            },
            Request::Invoke {
                correlation_id: 43,
                ack: AckLevel::Replicated,
                reactor: "acct-8".into(),
                procedure: "deposit".into(),
                args: vec![Value::Float(1.0)],
            },
            Request::Ping { correlation_id: 0 },
            Request::ReplSubscribe {
                correlation_id: 7,
                from_epoch: 0,
                follower_id: 0xfee1_dead_beef,
            },
            Request::ReplAck {
                correlation_id: 7,
                applied_epoch: 99,
            },
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip_all_kinds_and_errors() {
        let all_errors = vec![
            TxnError::UserAbort("over limit".into()),
            TxnError::ValidationFailed,
            TxnError::Phantom,
            TxnError::CommitAborted,
            TxnError::DangerousStructure {
                reactor: "r1".into(),
            },
            TxnError::UnknownReactor("ghost".into()),
            TxnError::UnknownProcedure {
                reactor_type: "Account".into(),
                procedure: "fly".into(),
            },
            TxnError::UnknownRelation("orders".into()),
            TxnError::UnknownColumn {
                relation: "orders".into(),
                column: "vibe".into(),
            },
            TxnError::DuplicateKey {
                relation: "orders".into(),
                key: "9".into(),
            },
            TxnError::NotFound {
                relation: "orders".into(),
                key: "10".into(),
            },
            TxnError::Runtime("executor gone".into()),
            TxnError::BadArguments("want 2, got 3".into()),
        ];
        let mut resps = vec![
            Response::TxnOk {
                correlation_id: 9,
                value: Value::Str("done".into()),
                commit_epoch: Some(88),
            },
            Response::TxnOk {
                correlation_id: 10,
                value: Value::Null,
                commit_epoch: None,
            },
            Response::MetricsText {
                correlation_id: 11,
                text: "reactdb_txn_committed 12\n".into(),
            },
            Response::Pong { correlation_id: 12 },
            Response::ServerError {
                correlation_id: 13,
                message: "draining".into(),
            },
            Response::ReplFile {
                correlation_id: 14,
                name: "wal-e0000-g000001.log".into(),
                offset: 16,
                bytes: vec![0xAB; 33],
            },
            Response::ReplEpoch {
                correlation_id: 14,
                epoch: 512,
            },
            Response::ReplEnd {
                correlation_id: 14,
                reason: "primary shutting down".into(),
            },
        ];
        for (i, error) in all_errors.into_iter().enumerate() {
            resps.push(Response::TxnErr {
                correlation_id: 100 + i as u64,
                error,
            });
        }
        for resp in resps {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_request(&Request::Ping { correlation_id: 3 });
        bytes.push(0xFF);
        assert!(matches!(
            decode_request(&bytes),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn unknown_ack_tag_rejected() {
        let mut payload = vec![KIND_INVOKE];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(9); // no such ack level
        put_string(&mut payload, "r");
        put_string(&mut payload, "p");
        payload.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::UnknownTag {
                what: "ack level",
                ..
            })
        ));
    }

    #[test]
    fn hostile_repl_file_length_rejected_before_allocation() {
        // A ReplFile whose chunk-length field claims 512 MiB.
        let mut payload = vec![KIND_REPL_FILE];
        payload.extend_from_slice(&7u64.to_le_bytes());
        put_string(&mut payload, "wal-e0000-g000001.log");
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&(512u32 << 20).to_le_bytes());
        assert_eq!(decode_response(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn hostile_string_length_rejected_before_allocation() {
        // An invoke whose reactor-name length field claims 512 MiB.
        let mut payload = vec![KIND_INVOKE];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0); // ack mode
        payload.extend_from_slice(&(512u32 << 20).to_le_bytes());
        assert_eq!(decode_request(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn hostile_arg_count_rejected() {
        let mut payload = vec![KIND_INVOKE];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0);
        put_string(&mut payload, "r");
        put_string(&mut payload, "p");
        payload.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed(_))
        ));
    }
}
