//! Property tests for the wire codec: every message kind round-trips
//! through frame + body encode/decode, and the decoder survives
//! truncation, byte flips, hostile length fields and plain garbage
//! without panicking or returning a message it was never sent.

use proptest::prelude::*;
use reactdb_client::codec::{
    decode_frame, decode_request, decode_response, encode_request, encode_response, frame,
    MetricsFormat, Request, Response, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use reactdb_common::{AckLevel, TxnError, Value};

/// Random short string over a charset that exercises multi-byte UTF-8.
fn arb_string(rng: &mut TestRng) -> String {
    const CHARS: &[char] = &['a', 'B', '7', '_', '-', 'é', 'λ', '中', '🦀', ' '];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize])
        .collect()
}

fn arb_value(rng: &mut TestRng) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Float(rng.unit_f64() * 1e9 - 5e8),
        3 => Value::Str(arb_string(rng)),
        _ => Value::Bool(rng.next_u64() & 1 == 1),
    }
}

fn arb_txn_error(rng: &mut TestRng) -> TxnError {
    match rng.below(13) {
        0 => TxnError::UserAbort(arb_string(rng)),
        1 => TxnError::ValidationFailed,
        2 => TxnError::Phantom,
        3 => TxnError::CommitAborted,
        4 => TxnError::DangerousStructure {
            reactor: arb_string(rng),
        },
        5 => TxnError::UnknownReactor(arb_string(rng)),
        6 => TxnError::UnknownProcedure {
            reactor_type: arb_string(rng),
            procedure: arb_string(rng),
        },
        7 => TxnError::UnknownRelation(arb_string(rng)),
        8 => TxnError::UnknownColumn {
            relation: arb_string(rng),
            column: arb_string(rng),
        },
        9 => TxnError::DuplicateKey {
            relation: arb_string(rng),
            key: arb_string(rng),
        },
        10 => TxnError::NotFound {
            relation: arb_string(rng),
            key: arb_string(rng),
        },
        11 => TxnError::Runtime(arb_string(rng)),
        _ => TxnError::BadArguments(arb_string(rng)),
    }
}

fn arb_request(rng: &mut TestRng) -> Request {
    let correlation_id = rng.next_u64();
    match rng.below(5) {
        0 => Request::Invoke {
            correlation_id,
            ack: AckLevel::ALL[rng.below(AckLevel::ALL.len() as u64) as usize],
            reactor: arb_string(rng),
            procedure: arb_string(rng),
            args: (0..rng.below(6)).map(|_| arb_value(rng)).collect(),
        },
        1 => Request::Metrics {
            correlation_id,
            format: if rng.next_u64() & 1 == 0 {
                MetricsFormat::Prometheus
            } else {
                MetricsFormat::Json
            },
        },
        2 => Request::ReplSubscribe {
            correlation_id,
            from_epoch: rng.next_u64(),
            follower_id: rng.next_u64(),
        },
        3 => Request::ReplAck {
            correlation_id,
            applied_epoch: rng.next_u64(),
        },
        _ => Request::Ping { correlation_id },
    }
}

fn arb_response(rng: &mut TestRng) -> Response {
    let correlation_id = rng.next_u64();
    match rng.below(8) {
        0 => Response::TxnOk {
            correlation_id,
            value: arb_value(rng),
            commit_epoch: if rng.next_u64() & 1 == 0 {
                Some(rng.next_u64())
            } else {
                None
            },
        },
        1 => Response::TxnErr {
            correlation_id,
            error: arb_txn_error(rng),
        },
        2 => Response::MetricsText {
            correlation_id,
            text: arb_string(rng),
        },
        3 => Response::Pong { correlation_id },
        4 => Response::ReplFile {
            correlation_id,
            name: arb_string(rng),
            offset: rng.next_u64(),
            bytes: (0..rng.below(48)).map(|_| rng.next_u64() as u8).collect(),
        },
        5 => Response::ReplEpoch {
            correlation_id,
            epoch: rng.next_u64(),
        },
        6 => Response::ReplEnd {
            correlation_id,
            reason: arb_string(rng),
        },
        _ => Response::ServerError {
            correlation_id,
            message: arb_string(rng),
        },
    }
}

proptest! {
    /// Every request kind survives frame + body encode/decode unchanged.
    #[test]
    fn requests_roundtrip_through_frames(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let req = arb_request(&mut rng);
        let framed = frame(&encode_request(&req));
        let (payload, consumed) = decode_frame(&framed)
            .map_err(|e| format!("frame rejected: {e}"))?
            .ok_or("frame incomplete")?;
        prop_assert_eq!(consumed, framed.len());
        let decoded = decode_request(payload).map_err(|e| format!("body rejected: {e}"))?;
        prop_assert_eq!(decoded, req);
    }

    /// Every response kind — including all thirteen error variants fed by
    /// `arb_txn_error` — survives the same round trip.
    #[test]
    fn responses_roundtrip_through_frames(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let resp = arb_response(&mut rng);
        let framed = frame(&encode_response(&resp));
        let (payload, consumed) = decode_frame(&framed)
            .map_err(|e| format!("frame rejected: {e}"))?
            .ok_or("frame incomplete")?;
        prop_assert_eq!(consumed, framed.len());
        let decoded = decode_response(payload).map_err(|e| format!("body rejected: {e}"))?;
        prop_assert_eq!(decoded, resp);
    }

    /// Truncating a valid frame at any point either asks for more bytes or
    /// fails cleanly — never panics, never yields a message.
    #[test]
    fn truncation_is_need_more_or_clean_error(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let framed = frame(&encode_request(&arb_request(&mut rng)));
        let cut = rng.below(framed.len() as u64) as usize;
        match decode_frame(&framed[..cut]) {
            Ok(None) | Err(_) => {}
            Ok(Some(_)) => prop_assert!(cut == framed.len(), "truncated frame decoded whole"),
        }
        // The truncated tail fed straight to the body decoder must also be
        // total (the reader only does this after a CRC pass, but the
        // decoder itself must not rely on that).
        let _ = decode_request(&framed[..cut]);
        let _ = decode_response(&framed[..cut]);
    }

    /// Flipping any single byte of a framed message is always detected:
    /// the decoder never returns the original message, and never panics.
    /// (A payload flip trips the CRC; a header flip changes the announced
    /// length, which yields need-more, too-large, or a CRC mismatch.)
    #[test]
    fn single_byte_flip_never_yields_the_message(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let req = arb_request(&mut rng);
        let mut framed = frame(&encode_request(&req));
        let pos = rng.below(framed.len() as u64) as usize;
        let bit = 1u8 << rng.below(8);
        framed[pos] ^= bit;
        match decode_frame(&framed) {
            Ok(None) | Err(_) => {}
            Ok(Some((payload, _))) => {
                // Reaching here would require a CRC collision; the decoded
                // body must at minimum not impersonate the original.
                if let Ok(decoded) = decode_request(payload) {
                    prop_assert_ne!(decoded, req);
                }
            }
        }
    }

    /// A header announcing more than the cap is rejected from the header
    /// alone, before any payload is buffered or allocated.
    #[test]
    fn oversized_length_rejected(extra in 1u32..=u32::MAX - (1u32 << 20), crc in 0u32..u32::MAX) {
        let len = MAX_FRAME_LEN + extra;
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN);
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        match decode_frame(&buf) {
            Err(WireError::FrameTooLarge { len: l, .. }) => prop_assert_eq!(l, len),
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }

    /// Arbitrary garbage bytes never panic any decoder entry point.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = decode_frame(&bytes);
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        // And garbage wrapped in a *valid* frame exercises the body
        // decoders past the CRC gate.
        let framed = frame(&bytes);
        if let Ok(Some((payload, _))) = decode_frame(&framed) {
            let _ = decode_request(payload);
            let _ = decode_response(payload);
        }
    }
}
