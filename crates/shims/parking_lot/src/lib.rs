//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API: lock
//! acquisition never returns a `Result`, and a panic while holding a lock
//! simply releases it for the next owner (poison is swallowed via
//! `into_inner`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Non-poisoning mutex.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so that `Condvar::wait_for` can temporarily take the std
    // guard out (std's wait API consumes and returns the guard by value).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(50));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
