//! Offline shim for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple warm-up + timed-batch loop that reports the mean time per
//! iteration; there is no statistical analysis or HTML report. Each bench
//! function is budgeted ~`CRITERION_MEASURE_MS` milliseconds (env var,
//! default 100) so that `cargo test`/`cargo bench` stay fast.
//!
//! When the `CRITERION_JSON` env var names a file, every finished benchmark
//! additionally appends one machine-readable JSON line
//! (`{"bench": .., "ns_per_iter": .., "iterations": ..}`) to it — CI uses
//! this to record the perf trajectory per commit as `BENCH_results.json`.

use std::hint;
use std::io::Write;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the shim treats them
/// identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing collector handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    measure_for: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unrecorded runs populate caches and lazy state.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < self.measure_for {
            black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations.max(1);
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup cost
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iterations = 0u64;
        let wall = Instant::now();
        while measured < self.measure_for && wall.elapsed() < self.measure_for * 4 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iterations += 1;
        }
        self.iterations = iterations.max(1);
        self.elapsed = measured;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        Self {
            measure_for: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure_for = d;
        self
    }

    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measure_for: self.measure_for,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter_ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64
        };
        println!(
            "bench {name:<48} {:>12.1} ns/iter ({} iterations)",
            per_iter_ns, bencher.iterations
        );
        emit_json_line(name, per_iter_ns, bencher.iterations);
        self
    }
}

/// Appends one JSON-lines record for a finished benchmark to the file named
/// by `CRITERION_JSON`, when set. Errors are deliberately swallowed: result
/// recording must never fail a bench run.
fn emit_json_line(name: &str, ns_per_iter: f64, iterations: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    append_json_line(&path, name, ns_per_iter, iterations);
}

/// The env-independent writer behind [`emit_json_line`] (separated so tests
/// need not touch the process-global env var, which sibling tests that also
/// bench would race). Public so bench code can record custom metrics (e.g.
/// log bytes per transaction) into the same JSON-lines file with the same
/// escaping, instead of hand-rolling the schema.
pub fn append_json_line(path: &str, name: &str, ns_per_iter: f64, iterations: u64) {
    // Bench names in this workspace are static identifiers; escape the two
    // JSON-significant characters anyway so the output always parses.
    let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"bench\":\"{escaped}\",\"ns_per_iter\":{ns_per_iter:.1},\"iterations\":{iterations}}}\n"
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with `--test`; honour the
            // flag by shrinking the measurement budget so the run is a
            // compile-and-smoke check rather than a measurement.
            if std::env::args().any(|a| a == "--test") {
                std::env::set_var("CRITERION_MEASURE_MS", "1");
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 3, "routine should run during warm-up and measurement");
    }

    #[test]
    fn json_emission_appends_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "criterion-shim-json-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        // Exercise the writer directly: the env-var lookup is process-global
        // and the sibling tests also bench, so setting it here would race.
        let path_str = path.to_string_lossy();
        append_json_line(&path_str, "shim/json \"quoted\"", 123.456, 42);
        append_json_line(&path_str, "shim/json2", 0.0, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"bench\":\"shim/json \\\"quoted\\\"\",\"ns_per_iter\":123.5,\"iterations\":42}"
        );
        assert!(lines[1].contains("\"iterations\":1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
