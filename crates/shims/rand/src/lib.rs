//! Offline shim for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API used by the workspace: the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), the
//! [`SeedableRng`] constructor trait and [`rngs::StdRng`], a deterministic
//! xoshiro256** generator seeded through splitmix64.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random word.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable by [`Rng::gen`] (the rand `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`]. The element type is a separate
/// type parameter (as in rand proper) so that integer-literal inference can
/// flow from the call site's expected type into the range bounds.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform u64 in `[0, n)` (n > 0) by widening multiply, avoiding
/// modulo bias well beyond what the workloads can observe.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        lo + unit * (hi - lo)
    }
}

/// The user-facing random-number trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type ([`Standard`] distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256** seeded via splitmix64.
    /// Deterministic for a given seed, which the simulator tests rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected_and_inclusive_bounds_reachable() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            saw[v] = true;
            let w = rng.gen_range(10..=12i64);
            assert!((10..=12).contains(&w));
            let f = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
        assert!(saw.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
