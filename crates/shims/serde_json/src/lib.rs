//! Offline shim for the `serde_json` crate: renders shim-serde [`Content`]
//! trees as JSON text and parses JSON text back into them.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Error produced by JSON parsing or by a type mismatch during
/// deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize_content(&content)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Match serde_json: whole floats print with a trailing `.0`.
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&v.to_string());
        }
    } else {
        // JSON has no NaN/inf; serde_json emits null.
        out.push_str("null");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert!(!from_str::<bool>(" false ").unwrap());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\ttab".to_owned();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn vectors_and_pretty_printing() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  1,"));
        assert_eq!(from_str::<Vec<u64>>(&pretty).unwrap(), v);
        assert_eq!(to_string(&Vec::<u64>::new()).unwrap(), "[]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("1").is_err());
    }
}
