//! Offline shim for the `proptest` crate.
//!
//! Implements the subset used by the workspace: the [`proptest!`] macro,
//! range / tuple / vec / bool strategies, [`Strategy::prop_map`], and the
//! `prop_assert*` macros. Unlike real proptest there is no shrinking; each
//! property runs a fixed number of deterministically generated cases (the
//! seed is derived from the test name, so failures reproduce exactly).

use std::ops::{Range, RangeInclusive};

/// Number of cases generated per property.
pub const CASES: u32 = 128;

/// Deterministic case generator (xorshift* over a splitmix64-derived seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an arbitrary seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        if state == 0 {
            state = 0xDEAD_BEEF_CAFE_F00D;
        }
        Self { state }
    }

    /// Derives a seed from a test name (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Bias towards the boundaries: they find off-by-one bugs.
                match rng.below(8) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => (self.start as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                match rng.below(8) {
                    0 => lo,
                    1 => hi,
                    _ if span > u64::MAX as u128 => rng.next_u64() as $t,
                    _ => (lo as i128 + rng.below(span as u64) as i128) as $t,
                }
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy yielding vectors of `element` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestRng};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`crate::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let seed = $crate::TestRng::seed_from_name(stringify!($name));
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = result {
                        panic!(
                            "property {} failed at case {case} (seed {seed:#x}): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {} (left: {lhs:?}, right: {rhs:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {} (both: {lhs:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::sample(&(0i64..=5), &mut rng);
            assert!((0..=5).contains(&w));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::new(2);
        let strat = crate::collection::vec((0u64..4, crate::bool::ANY), 1..6);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|(a, _)| *a < 4));
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut rng = TestRng::new(3);
        let strat = (1u64..5).prop_map(|v| v * 100);
        for _ in 0..50 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((100..500).contains(&v) && v % 100 == 0);
        }
    }

    proptest! {
        /// The macro itself: generated args respect their strategies.
        #[test]
        fn prop_macro_generates_cases(a in 0u64..10, b in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
        }
    }
}
