//! Offline shim for the `crossbeam` crate: an unbounded multi-producer
//! multi-consumer channel with the `crossbeam::channel` API surface used by
//! the workspace (`unbounded`, `Sender`, `Receiver`, `TryRecvError`).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Sending half of an unbounded channel. Cloneable and shareable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable and shareable
    /// (multiple consumers compete for messages).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message. Fails only when every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .chan
                    .ready
                    .wait_timeout(queue, std::time::Duration::from_millis(10))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn multiple_consumers_compete() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let rx2 = rx.clone();
            let t = std::thread::spawn(move || {
                let mut got = 0;
                while rx2.try_recv().is_ok() {
                    got += 1;
                }
                got
            });
            let mut got = 0;
            while rx.try_recv().is_ok() {
                got += 1;
            }
            assert_eq!(got + t.join().unwrap(), 100);
        }
    }
}
