//! Offline shim for the `serde` crate.
//!
//! The real serde is visitor-based; this shim uses a simple tree data model
//! ([`Content`]) instead: `Serialize` renders a value into a `Content` tree
//! and `Deserialize` rebuilds a value from one. The derive macros (from the
//! sibling `serde_derive` shim) generate impls following serde's external
//! tagging conventions, so JSON produced by `serde_json` (shim) is
//! byte-compatible with what the real stack would emit for the types in
//! this workspace.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (array).
    Seq(Vec<Content>),
    /// Ordered map with string keys (object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The fields of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when a [`Content`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds a "wrong shape" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field in a map's entries; used by derived `Deserialize`
/// impls.
pub fn content_field<'a>(
    entries: &'a [(String, Content)],
    name: &str,
    ty: &str,
) -> Result<&'a Content, DeError> {
    content_field_opt(entries, name)
        .ok_or_else(|| DeError(format!("missing field `{name}` while deserializing {ty}")))
}

/// Optional field lookup behind `#[serde(default)]`: a missing entry is
/// `None` (the derived impl then falls back to `Default::default()`).
pub fn content_field_opt<'a>(entries: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization into the [`Content`] tree model.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn serialize_content(&self) -> Content;
}

/// Deserialization from the [`Content`] tree model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) if *v >= 0 => Ok(*v as $t),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(v) => Ok(*v),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

macro_rules! tuple_ser_de {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let items = content
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let mut iter = items.iter();
                let out = ($(
                    $name::deserialize_content(
                        iter.next().ok_or_else(|| DeError::expected("longer sequence", "tuple"))?,
                    )?,
                )+);
                Ok(out)
            }
        }
    )*};
}

tuple_ser_de! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::deserialize_content(&5i64.serialize_content()), Ok(5));
        assert_eq!(u64::deserialize_content(&7u64.serialize_content()), Ok(7));
        assert_eq!(
            f64::deserialize_content(&1.5f64.serialize_content()),
            Ok(1.5)
        );
        assert_eq!(
            bool::deserialize_content(&true.serialize_content()),
            Ok(true)
        );
        assert_eq!(
            String::deserialize_content(&"x".to_owned().serialize_content()),
            Ok("x".to_owned())
        );
    }

    #[test]
    fn options_and_vecs_roundtrip() {
        let v: Option<u64> = None;
        assert_eq!(v.serialize_content(), Content::Null);
        assert_eq!(Option::<u64>::deserialize_content(&Content::Null), Ok(None));
        let xs = vec![1u64, 2, 3];
        assert_eq!(
            Vec::<u64>::deserialize_content(&xs.serialize_content()),
            Ok(xs)
        );
    }

    #[test]
    fn tuples_roundtrip() {
        let t = ("a".to_owned(), 2.5f64);
        let c = t.serialize_content();
        assert_eq!(<(String, f64)>::deserialize_content(&c), Ok(t));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        assert!(bool::deserialize_content(&Content::I64(1)).is_err());
        assert!(Vec::<u64>::deserialize_content(&Content::Str("no".into())).is_err());
        let err = content_field(&[], "missing", "T").unwrap_err();
        assert!(err.0.contains("missing"));
    }
}
