//! Offline shim for `serde_derive`.
//!
//! A hand-written proc macro (the environment has no `syn`/`quote`) that
//! parses the derive input token stream directly and emits impls of the shim
//! serde's tree-model traits. Supports the shapes used in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (including newtypes such as the id types),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants,
//!
//! following serde's externally-tagged representation, plus the
//! `#[serde(default)]` field attribute (a missing map entry deserializes
//! via `Default::default()` — what keeps configuration JSON written before
//! a field existed parseable). Generic types are not supported and produce
//! a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct NamedField {
    name: String,
    /// True when the field carries `#[serde(default)]`: a missing map
    /// entry falls back to `Default::default()` instead of erroring.
    default: bool,
}

#[derive(Debug)]
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<NamedField>),
    /// Tuple fields; only the count matters.
    Tuple(usize),
    /// No fields.
    Unit,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => generate(&parsed).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error token"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_struct_body(&tokens, &mut i)?),
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Shape::Enum(parse_variants(body)?)
        }
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };

    Ok(Input { name, shape })
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    take_attributes(tokens, i);
}

/// Advances past attributes like [`skip_attributes`], additionally
/// reporting whether a `#[serde(default)]` was among them.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(attr)) = tokens.get(*i) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    has_default |= args.stream().into_iter().any(
                        |tok| matches!(&tok, TokenTree::Ident(id) if id.to_string() == "default"),
                    );
                }
            }
            *i += 1;
        }
    }
    has_default
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize) -> Result<Fields, String> {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Fields::Named(parse_named_fields(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        other => Err(format!("unsupported struct body: {other:?}")),
    }
}

/// Parses `name: Type, ...` field lists, skipping attributes, visibility and
/// type tokens (commas inside generic angle brackets are not separators).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<NamedField>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let default = take_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(NamedField { name, default });
        skip_type(&tokens, &mut i);
    }
    Ok(fields)
}

/// Advances past a type, stopping after the next top-level `,` (or at the
/// end). Tracks angle-bracket depth so `Vec<(String, f64)>`-style types do
/// not split early.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::serialize_content(&self.0)".to_owned()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::serialize_content(&self.{idx})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Content::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => \
                         ::serde::Content::Str(::std::string::String::from({vname:?})),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(f0) => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::serialize_content(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::serialize_content(f{k})"))
                            .collect();
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Content::Seq(::std::vec![{items}]))]),",
                            binds = binders.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binders = fs
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::serialize_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binders} }} => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Content::Map(::std::vec![{entries}]))]),",
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

/// Deserialization initializer of one named field: `#[serde(default)]`
/// fields tolerate a missing map entry by falling back to
/// `Default::default()`.
fn named_field_init(field: &NamedField, ty: &str) -> String {
    let f = &field.name;
    if field.default {
        format!(
            "{f}: match ::serde::content_field_opt(entries, {f:?}) {{\
             ::std::option::Option::Some(v) => \
             ::serde::Deserialize::deserialize_content(v)?,\
             ::std::option::Option::None => ::std::default::Default::default(),\
             }},"
        )
    } else {
        format!(
            "{f}: ::serde::Deserialize::deserialize_content(\
             ::serde::content_field(entries, {f:?}, {ty:?})?)?,"
        )
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f, name)).collect();
            format!(
                "let entries = content.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join("\n")
            )
        }
        Shape::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_content(content)?))"
        ),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_content(&items[{k}])?"))
                .collect();
            format!(
                "let items = content.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{n} elements\", {name:?})); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!(
            "match content {{\n\
             ::serde::Content::Null => ::std::result::Result::Ok({name}),\n\
             _ => ::std::result::Result::Err(::serde::DeError::expected(\"null\", {name:?})),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(vname, fields)| match fields {
                    Fields::Tuple(1) => format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_content(payload)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::deserialize_content(&items[{k}])?")
                            })
                            .collect();
                        format!(
                            "{vname:?} => {{\n\
                             let items = payload.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"{n} elements\", {name:?})); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}",
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                let init = named_field_init(f, name);
                                init.replace("(entries,", "(fields,")
                            })
                            .collect();
                        format!(
                            "{vname:?} => {{\n\
                             let fields = payload.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", {name:?}))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            inits.join("\n")
                        )
                    }
                    Fields::Unit => unreachable!("filtered above"),
                })
                .collect();
            format!(
                "match content {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"variant string or single-entry map\", {name:?})),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(content: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
