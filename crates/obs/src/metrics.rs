//! The metrics registry: phase histograms, busy-time gauges and the trace
//! buffer behind one tracing toggle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use reactdb_common::TracingConfig;

use crate::histogram::{Histogram, ShardedHistogram};
use crate::tracer::{TraceBuffer, TraceEvent, TraceKind};

/// A traced phase of a transaction's life (or of a background daemon's
/// work). The first seven are the commit-path phases the export surface
/// guarantees: where a root transaction's latency goes, end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Root procedure execution: `run_subtxn` from dequeue to the commit
    /// decision (includes sub-transaction fan-out and cooperative waits).
    Execute,
    /// Silo phase 1: sorting and acquiring write locks.
    Lock,
    /// Membership fence: bumping node versions whose membership the commit
    /// changes (phantom protection).
    Fence,
    /// Silo phase 3: read-set and node-set validation.
    Validate,
    /// Silo phase 4: TID generation and write installation.
    Write,
    /// Durability hook: rendering redo records and appending them to the
    /// log sink.
    Log,
    /// Client durable acknowledgement: `wait_durable` blocking until the
    /// WAL's durable epoch covers the commit epoch.
    DurableAck,
    /// Group commit: fencing the epoch and draining in-flight commits
    /// through the gate (sync queue wait).
    WalSyncWait,
    /// Group commit: flushing and fsyncing every log writer.
    WalFsync,
    /// One checkpointer chunk: snapshotting a key-range page and writing
    /// its frames.
    CheckpointChunk,
    /// One parallel-capture part file: a checkpoint writer thread's whole
    /// span from first chunk to the part fsync.
    CkptPartWrite,
    /// Recovery replay: applying checkpoint rows and the log tail to the
    /// tables (one span per replay worker).
    RecoveryReplay,
    /// Client session wait: `submit` to resolution (queueing + execute +
    /// commit), as observed by the client.
    SessionWait,
    /// Wire server: parsing one request frame off a connection's receive
    /// buffer (length/checksum verification plus body decode).
    NetDecode,
    /// Wire server: turning a decoded request into engine work — session
    /// submission for invokes, snapshot rendering for metrics requests.
    NetDispatch,
    /// Wire server: encoding a completed request's response frame and
    /// handing it to the connection's send buffer.
    NetReply,
    /// Replication primary: one shipping-cursor poll plus encoding and
    /// writing the resulting replication frames to a follower.
    NetReplicate,
    /// Replication follower: applying one shipped epoch's redo batches to
    /// the local tables (including the local re-log and sync).
    FollowerApply,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 18;

    /// Every phase, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Execute,
        Phase::Lock,
        Phase::Fence,
        Phase::Validate,
        Phase::Write,
        Phase::Log,
        Phase::DurableAck,
        Phase::WalSyncWait,
        Phase::WalFsync,
        Phase::CheckpointChunk,
        Phase::CkptPartWrite,
        Phase::RecoveryReplay,
        Phase::SessionWait,
        Phase::NetDecode,
        Phase::NetDispatch,
        Phase::NetReply,
        Phase::NetReplicate,
        Phase::FollowerApply,
    ];

    /// The five sections of `Coordinator::commit` a [`CommitProbe`] laps.
    pub const COMMIT: [Phase; 5] = [
        Phase::Lock,
        Phase::Fence,
        Phase::Validate,
        Phase::Write,
        Phase::Log,
    ];

    /// Stable snake_case name used in metric names and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Execute => "execute",
            Phase::Lock => "lock",
            Phase::Fence => "fence",
            Phase::Validate => "validate",
            Phase::Write => "write",
            Phase::Log => "log",
            Phase::DurableAck => "durable_ack",
            Phase::WalSyncWait => "wal_sync_wait",
            Phase::WalFsync => "wal_fsync",
            Phase::CheckpointChunk => "checkpoint_chunk",
            Phase::CkptPartWrite => "ckpt_part_write",
            Phase::RecoveryReplay => "recovery_replay",
            Phase::SessionWait => "session_wait",
            Phase::NetDecode => "net_decode",
            Phase::NetDispatch => "net_dispatch",
            Phase::NetReply => "net_reply",
            Phase::NetReplicate => "net_replicate",
            Phase::FollowerApply => "follower_apply",
        }
    }
}

/// The observability registry one database instance owns (shared with its
/// WAL and checkpointer). With tracing disabled every recording entry
/// point reduces to a branch on a `bool` — no clock reads, no atomics.
pub struct Metrics {
    enabled: bool,
    birth: Instant,
    slow_txn_ns: u64,
    phases: Vec<ShardedHistogram>,
    busy_ns: Vec<AtomicU64>,
    tracer: TraceBuffer,
}

impl Metrics {
    /// Creates the registry for `executors` executors under `config`.
    pub fn new(executors: usize, config: &TracingConfig) -> Self {
        let executors = executors.max(1);
        Self {
            enabled: config.enabled,
            birth: Instant::now(),
            slow_txn_ns: config.slow_txn_threshold_us.saturating_mul(1_000),
            phases: Phase::ALL
                .iter()
                .map(|_| ShardedHistogram::new(executors))
                .collect(),
            busy_ns: (0..executors).map(|_| AtomicU64::new(0)).collect(),
            tracer: TraceBuffer::new(executors, config.ring_capacity),
        }
    }

    /// A disabled registry (`TracingConfig::off()`).
    pub fn disabled() -> Self {
        Self::new(1, &TracingConfig::off())
    }

    /// Whether tracing is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the registry was created (the trace timebase).
    pub fn now_ns(&self) -> u64 {
        self.birth.elapsed().as_nanos() as u64
    }

    /// Wall-clock nanoseconds this instance has been up.
    pub fn uptime_ns(&self) -> u64 {
        self.now_ns()
    }

    /// The slow-transaction threshold in nanoseconds.
    pub fn slow_txn_ns(&self) -> u64 {
        self.slow_txn_ns
    }

    /// Starts a span: `Some(now)` when tracing is on, `None` (no clock
    /// read) when off.
    pub fn clock(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Records `ns` into `phase`'s histogram, sharded by `shard`.
    pub fn record_phase(&self, phase: Phase, shard: usize, ns: u64) {
        if self.enabled {
            self.phases[phase as usize].record(shard, ns);
        }
    }

    /// Records the span from `since` (a [`Metrics::clock`] result) into
    /// `phase` and returns its length in nanoseconds.
    pub fn record_elapsed(&self, phase: Phase, shard: usize, since: Instant) -> u64 {
        let ns = since.elapsed().as_nanos() as u64;
        self.record_phase(phase, shard, ns);
        ns
    }

    /// A per-commit probe for the coordinator's phase laps, or `None` when
    /// tracing is off (the coordinator then takes no timestamps at all).
    pub fn commit_probe(&self, shard: usize) -> Option<CommitProbe<'_>> {
        self.enabled.then(|| CommitProbe {
            metrics: self,
            shard,
            last: Instant::now(),
            durs: [0; Phase::COMMIT.len()],
        })
    }

    /// Adds busy time to one executor's utilization accounting.
    pub fn add_busy(&self, executor: usize, ns: u64) {
        if self.enabled {
            self.busy_ns[executor % self.busy_ns.len()].fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Busy nanoseconds accumulated by one executor's workers.
    pub fn busy_ns(&self, executor: usize) -> u64 {
        self.busy_ns[executor % self.busy_ns.len()].load(Ordering::Relaxed)
    }

    /// Records a trace event (no-op when tracing is off). `executor`
    /// selects the ring; `usize::MAX` is the shared non-executor ring.
    pub fn trace(&self, executor: usize, txn: u64, kind: TraceKind, dur_ns: u64) {
        if self.enabled {
            self.tracer
                .record(executor, txn, kind, self.now_ns(), dur_ns);
        }
    }

    /// Drains the trace rings (most recent events, globally ordered).
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        self.tracer.drain()
    }

    /// Point-in-time merge of one phase's shards.
    pub fn phase_histogram(&self, phase: Phase) -> Histogram {
        self.phases[phase as usize].merged()
    }

    /// Samples recorded for one phase (across shards, without merging).
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phases[phase as usize].count()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.enabled)
            .field("executors", &self.busy_ns.len())
            .field("traced", &self.tracer.recorded())
            .finish()
    }
}

/// Phase-lap stopwatch for one commit, handed by the engine into
/// `Coordinator::commit_observed`. Each [`CommitProbe::lap`] records the
/// span since the previous lap into the phase's histogram and remembers it
/// for slow-transaction capture. Only ever constructed when tracing is on.
pub struct CommitProbe<'m> {
    metrics: &'m Metrics,
    shard: usize,
    last: Instant,
    durs: [u64; Phase::COMMIT.len()],
}

impl CommitProbe<'_> {
    /// Restarts the stopwatch; the coordinator calls this when the commit
    /// protocol actually begins (construction time may precede it).
    pub fn begin(&mut self) {
        self.last = Instant::now();
    }

    /// Ends the current phase span, recording it under `phase` (one of
    /// [`Phase::COMMIT`]) and starting the next span.
    pub fn lap(&mut self, phase: Phase) {
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        self.metrics.record_phase(phase, self.shard, ns);
        if let Some(slot) = Phase::COMMIT.iter().position(|p| *p == phase) {
            self.durs[slot] = ns;
        }
    }

    /// The recorded `(phase, ns)` laps, for slow-transaction capture.
    pub fn phase_durs(&self) -> [(Phase, u64); Phase::COMMIT.len()] {
        let mut out = [(Phase::Lock, 0u64); Phase::COMMIT.len()];
        for (i, phase) in Phase::COMMIT.iter().enumerate() {
            out[i] = (*phase, self.durs[i]);
        }
        out
    }

    /// Total nanoseconds across the recorded laps.
    pub fn total_ns(&self) -> u64 {
        self.durs.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.enabled());
        assert!(m.clock().is_none());
        assert!(m.commit_probe(0).is_none());
        m.record_phase(Phase::Execute, 0, 123);
        m.trace(0, 1, TraceKind::Commit, 5);
        m.add_busy(0, 10);
        assert_eq!(m.phase_count(Phase::Execute), 0);
        assert_eq!(m.busy_ns(0), 0);
        assert!(m.drain_trace().is_empty());
    }

    #[test]
    fn enabled_registry_records_phases_and_events() {
        let m = Metrics::new(2, &TracingConfig::default());
        m.record_phase(Phase::Lock, 0, 100);
        m.record_phase(Phase::Lock, 1, 300);
        assert_eq!(m.phase_count(Phase::Lock), 2);
        let h = m.phase_histogram(Phase::Lock);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0) >= 300);
        m.trace(1, 42, TraceKind::Commit, 400);
        let events = m.drain_trace();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].txn, 42);
        m.add_busy(1, 500);
        assert_eq!(m.busy_ns(1), 500);
    }

    #[test]
    fn commit_probe_laps_into_the_commit_phases() {
        let m = Metrics::new(1, &TracingConfig::default());
        let mut probe = m.commit_probe(0).unwrap();
        probe.begin();
        for phase in Phase::COMMIT {
            probe.lap(phase);
        }
        for phase in Phase::COMMIT {
            assert_eq!(m.phase_count(phase), 1, "{} not lapped", phase.name());
        }
        assert_eq!(m.phase_count(Phase::Execute), 0);
        let durs = probe.phase_durs();
        assert_eq!(durs.len(), 5);
        assert_eq!(durs[0].0, Phase::Lock);
        assert_eq!(probe.total_ns(), durs.iter().map(|(_, ns)| ns).sum());
    }

    #[test]
    fn slow_threshold_converts_to_nanoseconds() {
        let config = TracingConfig::default().with_slow_txn_threshold_us(250);
        let m = Metrics::new(1, &config);
        assert_eq!(m.slow_txn_ns(), 250_000);
    }
}
