//! The metrics export surface: a point-in-time, serializable snapshot of
//! every counter, gauge and histogram, with Prometheus-text and JSON
//! renderers and a delta helper for rate computation.

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter sample. Names may carry Prometheus
/// labels inline (`table_log_bytes{reactor="3",relation="account"}`); the
/// renderers keep the label block intact and sanitize only the name part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counter {
    /// Metric name, optionally with a `{label="value",...}` suffix.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// An instantaneous gauge sample (queue depth, utilization, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gauge {
    /// Metric name, optionally with a `{label="value",...}` suffix.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// Summary of one latency histogram: count, sum and selected percentiles,
/// all in nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name (e.g. `commit_lock_ns`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values in nanoseconds.
    pub sum_ns: u64,
    /// 50th percentile (median), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Maximum recorded value, nanoseconds.
    pub max_ns: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram under `name`.
    pub fn of(name: impl Into<String>, h: &crate::histogram::Histogram) -> Self {
        Self {
            name: name.into(),
            count: h.count(),
            sum_ns: h.sum(),
            p50_ns: h.percentile(0.50),
            p90_ns: h.percentile(0.90),
            p99_ns: h.percentile(0.99),
            p999_ns: h.percentile(0.999),
            max_ns: h.max(),
        }
    }
}

/// A point-in-time snapshot of every metric a database instance exports —
/// the return value of `ReactDB::metrics()`. Serializable, diffable
/// ([`MetricsSnapshot::delta`]) and renderable as Prometheus text or JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Microseconds the instance has been up at snapshot time.
    pub uptime_us: u64,
    /// All counters, in stable order.
    pub counters: Vec<Counter>,
    /// All gauges, in stable order.
    pub gauges: Vec<Gauge>,
    /// All histogram summaries, in stable order.
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty-printed JSON rendering of the snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Counter and gauge names gain a `reactdb_` prefix; histograms render
    /// as summaries with `quantile` labels plus `_sum`/`_count` series.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE reactdb_uptime_us counter\n");
        out.push_str(&format!("reactdb_uptime_us {}\n", self.uptime_us));
        for c in &self.counters {
            let (name, labels) = split_labels(&c.name);
            let name = sanitize(name);
            out.push_str(&format!("# TYPE reactdb_{name} counter\n"));
            out.push_str(&format!("reactdb_{name}{labels} {}\n", c.value));
        }
        for g in &self.gauges {
            let (name, labels) = split_labels(&g.name);
            let name = sanitize(name);
            out.push_str(&format!("# TYPE reactdb_{name} gauge\n"));
            out.push_str(&format!("reactdb_{name}{labels} {}\n", g.value));
        }
        for h in &self.histograms {
            let name = sanitize(&h.name);
            out.push_str(&format!("# TYPE reactdb_{name} summary\n"));
            for (q, v) in [
                ("0.5", h.p50_ns),
                ("0.9", h.p90_ns),
                ("0.99", h.p99_ns),
                ("0.999", h.p999_ns),
            ] {
                out.push_str(&format!("reactdb_{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("reactdb_{name}_max {}\n", h.max_ns));
            out.push_str(&format!("reactdb_{name}_sum {}\n", h.sum_ns));
            out.push_str(&format!("reactdb_{name}_count {}\n", h.count));
        }
        out
    }

    /// The change from `earlier` to `self`: counters, histogram counts and
    /// sums subtract (saturating, so a restarted instance yields zeros
    /// rather than wrapping); gauges, percentiles and maxima keep this
    /// snapshot's instantaneous values. Metrics absent from `earlier`
    /// (e.g. a table created in between) diff against zero.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_us: self.uptime_us.saturating_sub(earlier.uptime_us),
            counters: self
                .counters
                .iter()
                .map(|c| Counter {
                    name: c.name.clone(),
                    value: c
                        .value
                        .saturating_sub(earlier.counter(&c.name).unwrap_or(0)),
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| {
                    let prev = earlier.histogram(&h.name);
                    HistogramSummary {
                        name: h.name.clone(),
                        count: h.count.saturating_sub(prev.map_or(0, |p| p.count)),
                        sum_ns: h.sum_ns.saturating_sub(prev.map_or(0, |p| p.sum_ns)),
                        ..h.clone()
                    }
                })
                .collect(),
        }
    }
}

/// Splits an inline label block off a metric name: `a{b="c"}` becomes
/// `("a", "{b=\"c\"}")`; a bare name keeps an empty label part.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(pos) => (&name[..pos], &name[pos..]),
        None => (name, ""),
    }
}

/// Maps a metric name onto the Prometheus charset: `/` and `-` (and any
/// other non `[a-zA-Z0-9_:]` byte) become `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample() -> MetricsSnapshot {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 5_000] {
            h.record(v);
        }
        MetricsSnapshot {
            uptime_us: 1_234_567,
            counters: vec![
                Counter {
                    name: "txn_commits".into(),
                    value: 42,
                },
                Counter {
                    name: "table_log_bytes{reactor=\"0\",relation=\"account\"}".into(),
                    value: 9001,
                },
            ],
            gauges: vec![Gauge {
                name: "executor_utilization{executor=\"0\"}".into(),
                value: 0.75,
            }],
            histograms: vec![HistogramSummary::of("commit_lock_ns", &h)],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = sample();
        assert_eq!(snap.counter("txn_commits"), Some(42));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(
            snap.gauge("executor_utilization{executor=\"0\"}"),
            Some(0.75)
        );
        assert_eq!(snap.histogram("commit_lock_ns").unwrap().count, 4);
    }

    #[test]
    fn prometheus_text_carries_the_same_values_as_the_snapshot() {
        let snap = sample();
        let text = snap.to_prometheus_text();
        // Labeled counter: name sanitized, label block preserved verbatim.
        assert!(text.contains("reactdb_table_log_bytes{reactor=\"0\",relation=\"account\"} 9001\n"));
        assert!(text.contains("reactdb_txn_commits 42\n"));
        assert!(text.contains("reactdb_executor_utilization{executor=\"0\"} 0.75\n"));
        assert!(text.contains("# TYPE reactdb_commit_lock_ns summary\n"));
        let h = snap.histogram("commit_lock_ns").unwrap();
        assert!(text.contains(&format!(
            "reactdb_commit_lock_ns{{quantile=\"0.5\"}} {}\n",
            h.p50_ns
        )));
        assert!(text.contains(&format!(
            "reactdb_commit_lock_ns{{quantile=\"0.999\"}} {}\n",
            h.p999_ns
        )));
        assert!(text.contains(&format!("reactdb_commit_lock_ns_sum {}\n", h.sum_ns)));
        assert!(text.contains(&format!("reactdb_commit_lock_ns_count {}\n", h.count)));
        assert!(text.contains(&format!("reactdb_commit_lock_ns_max {}\n", h.max_ns)));
        assert!(text.contains(&format!("reactdb_uptime_us {}\n", snap.uptime_us)));
    }

    #[test]
    fn sanitize_maps_onto_the_prometheus_charset() {
        assert_eq!(sanitize("wal/commit-path p99"), "wal_commit_path_p99");
        assert_eq!(sanitize("already_fine:ok"), "already_fine:ok");
    }

    #[test]
    fn delta_subtracts_counters_and_histogram_totals() {
        let earlier = sample();
        let mut later = sample();
        later.uptime_us += 1_000_000;
        later.counters[0].value = 100;
        later.histograms[0].count = 10;
        later.histograms[0].sum_ns = 99_999;
        later.gauges[0].value = 0.25;
        let d = later.delta(&earlier);
        assert_eq!(d.uptime_us, 1_000_000);
        assert_eq!(d.counter("txn_commits"), Some(100 - 42));
        assert_eq!(
            d.counter("table_log_bytes{reactor=\"0\",relation=\"account\"}"),
            Some(0)
        );
        let h = d.histogram("commit_lock_ns").unwrap();
        assert_eq!(h.count, 10 - 4);
        assert_eq!(h.sum_ns, 99_999 - earlier.histograms[0].sum_ns);
        // Percentiles and gauges keep the later snapshot's values.
        assert_eq!(h.p50_ns, later.histograms[0].p50_ns);
        assert_eq!(d.gauges[0].value, 0.25);

        // A metric missing from the earlier snapshot diffs against zero.
        let novel = Counter {
            name: "new_metric".into(),
            value: 7,
        };
        later.counters.push(novel);
        let d2 = later.delta(&earlier);
        assert_eq!(d2.counter("new_metric"), Some(7));
    }
}
