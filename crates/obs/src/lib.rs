//! Observability for ReactDB-rs: latency histograms, per-phase transaction
//! tracing, and a metrics export surface.
//!
//! The paper's central claim is that *deployment configuration* changes
//! performance without changing correctness (§3.3) — which is only a usable
//! property if the engine can show where a transaction's time goes under a
//! given deployment. This crate is that instrumentation substrate:
//!
//! * [`Histogram`] — a mergeable, HdrHistogram-style log-bucketed latency
//!   histogram over `u64` nanoseconds: power-of-two buckets subdivided into
//!   16 linear sub-buckets (`record` is two atomic adds plus a `fetch_max`,
//!   lock-free; relative quantile error is bounded by 1/16). Per-executor
//!   shards ([`ShardedHistogram`]) keep the hot path contention-free and are
//!   merged on read.
//! * [`Phase`] — the taxonomy of traced phases: the root-procedure execute
//!   span, the five sections of the Silo commit protocol (lock, membership
//!   fence, validate, write install, log append), the durable
//!   acknowledgement, WAL group-commit internals (sync queue wait vs.
//!   fsync), the checkpointer's chunk walk, the client session wait, and
//!   the wire server's request lifecycle (frame decode, dispatch, reply).
//! * [`TraceBuffer`] / [`TraceEvent`] — per-executor fixed-capacity
//!   ring-buffer tracing (overwrite-oldest, zero allocation on the hot
//!   path) of commits, slow transactions above a configurable threshold,
//!   aborts tagged with the full [`AbortReason`] taxonomy, group commits
//!   and checkpoint chunks — drainable as structured events.
//! * [`Metrics`] — the registry an engine instance owns: phase histograms,
//!   per-executor busy-time accounting and the trace buffer, behind one
//!   `TracingConfig` toggle (`TracingConfig::off()` compiles the hot path
//!   down to a branch on a `bool`).
//! * [`MetricsSnapshot`] — the point-in-time export surface
//!   (`ReactDB::metrics()`): counters, gauges and histogram summaries with
//!   [`MetricsSnapshot::to_prometheus_text`], [`MetricsSnapshot::to_json`]
//!   and a [`MetricsSnapshot::delta`] diff helper for rate computation.
//!
//! Dependency-wise this crate sits directly above `reactdb-common`:
//! `reactdb-txn`, `reactdb-wal` and `reactdb-engine` all record into it.

pub mod abort;
pub mod histogram;
pub mod metrics;
pub mod snapshot;
pub mod tracer;

pub use abort::AbortReason;
pub use histogram::{Histogram, ShardedHistogram};
pub use metrics::{CommitProbe, Metrics, Phase};
pub use snapshot::{Counter, Gauge, HistogramSummary, MetricsSnapshot};
pub use tracer::{TraceBuffer, TraceEvent, TraceKind};
