//! Per-executor ring-buffer event tracing.
//!
//! Every executor (plus one shared ring for non-executor contexts: the WAL
//! daemon, the checkpointer, client threads) owns a fixed-capacity ring of
//! [`TraceEvent`] slots. Writers claim a slot with one `fetch_add` on the
//! ring's cursor and overwrite the oldest event — the hot path performs no
//! allocation and never blocks on readers (each slot is guarded by its own
//! uncontended mutex purely to keep concurrent writers from tearing an
//! event). A global sequence number orders events across rings, so a drain
//! reconstructs the interleaved recent history of the whole instance.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::abort::AbortReason;
use crate::metrics::Phase;

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A root transaction committed; `dur_ns` is execute + commit.
    Commit,
    /// A committed root transaction exceeded the slow-transaction
    /// threshold; one [`TraceKind::CommitPhase`] event per commit phase
    /// accompanies it with the breakdown.
    SlowTxn,
    /// One phase of a slow transaction's commit path.
    CommitPhase(Phase),
    /// A root transaction aborted, classified by the abort taxonomy.
    Abort(AbortReason),
    /// A group commit's queue-drain span (fence to gate release).
    GroupCommitWait,
    /// A group commit's flush + fsync span.
    GroupCommitFsync,
    /// One checkpointer chunk walk (snapshot + frame write).
    CheckpointChunk,
    /// A client's durable acknowledgement wait.
    DurableAck,
}

/// One traced event. `Copy` and fixed-size: writing an event into a ring
/// slot moves no heap data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (1-based, total order across rings); 0 marks
    /// an empty slot and never appears in drained events.
    pub seq: u64,
    /// Monotonic timestamp in nanoseconds since the owning
    /// [`crate::Metrics`] registry was created.
    pub at_ns: u64,
    /// Executor the event was recorded on; `u32::MAX` for non-executor
    /// contexts (WAL daemon, checkpointer, client threads).
    pub executor: u32,
    /// Root transaction id, when the event belongs to one (0 otherwise).
    pub txn: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Duration of the traced span in nanoseconds.
    pub dur_ns: u64,
}

impl TraceEvent {
    const EMPTY: TraceEvent = TraceEvent {
        seq: 0,
        at_ns: 0,
        executor: 0,
        txn: 0,
        kind: TraceKind::Commit,
        dur_ns: 0,
    };
}

struct Ring {
    cursor: AtomicU64,
    slots: Box<[Mutex<TraceEvent>]>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            cursor: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Mutex::new(TraceEvent::EMPTY))
                .collect(),
        }
    }
}

/// The per-executor ring buffers plus the global sequence counter.
pub struct TraceBuffer {
    rings: Vec<Ring>,
    seq: AtomicU64,
}

impl TraceBuffer {
    /// Creates `executors + 1` rings (the extra ring serves non-executor
    /// contexts) of `capacity` slots each, rounded up to a power of two.
    pub fn new(executors: usize, capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        Self {
            rings: (0..executors + 1).map(|_| Ring::new(capacity)).collect(),
            seq: AtomicU64::new(0),
        }
    }

    /// Slots per ring.
    pub fn capacity(&self) -> usize {
        self.rings[0].slots.len()
    }

    /// Number of rings (executors + 1).
    pub fn rings(&self) -> usize {
        self.rings.len()
    }

    /// Records one event into the ring of `executor` (anything `>=
    /// rings - 1`, e.g. `usize::MAX`, lands in the shared non-executor
    /// ring), overwriting the oldest slot once the ring is full.
    pub fn record(&self, executor: usize, txn: u64, kind: TraceKind, at_ns: u64, dur_ns: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let ring = &self.rings[executor.min(self.rings.len() - 1)];
        let slot = ring.cursor.fetch_add(1, Ordering::Relaxed) as usize & (ring.slots.len() - 1);
        *ring.slots[slot].lock() = TraceEvent {
            seq,
            at_ns,
            executor: executor.min(u32::MAX as usize) as u32,
            txn,
            kind,
            dur_ns,
        };
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Drains every ring: returns the retained (most recent) events sorted
    /// by global sequence and resets the slots, so consecutive drains
    /// partition the event stream.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for ring in &self.rings {
            for slot in ring.slots.iter() {
                let mut guard = slot.lock();
                if guard.seq != 0 {
                    events.push(std::mem::replace(&mut *guard, TraceEvent::EMPTY));
                }
            }
        }
        events.sort_by_key(|e| e.seq);
        events
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("rings", &self.rings.len())
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(TraceBuffer::new(1, 100).capacity(), 128);
        assert_eq!(TraceBuffer::new(1, 128).capacity(), 128);
        assert_eq!(TraceBuffer::new(0, 0).capacity(), 2);
    }

    #[test]
    fn drain_returns_events_in_sequence_order_and_clears() {
        let t = TraceBuffer::new(2, 8);
        t.record(0, 1, TraceKind::Commit, 10, 100);
        t.record(1, 2, TraceKind::Abort(AbortReason::Phantom), 20, 200);
        t.record(usize::MAX, 0, TraceKind::GroupCommitFsync, 30, 300);
        let events = t.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(events[1].kind, TraceKind::Abort(AbortReason::Phantom));
        assert_eq!(events[2].executor, u32::MAX, "shared ring context marker");
        assert!(t.drain().is_empty(), "drain clears the slots");
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let t = TraceBuffer::new(0, 4);
        for i in 0..10u64 {
            t.record(0, i, TraceKind::Commit, i, i);
        }
        let events = t.drain();
        assert_eq!(events.len(), 4, "capacity bounds retention");
        // The four *newest* events survive.
        assert_eq!(
            events.iter().map(|e| e.txn).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(t.recorded(), 10);
    }

    #[test]
    fn concurrent_writers_wrap_without_tearing_events() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        let t = Arc::new(TraceBuffer::new(3, 64));
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Self-consistent payload: txn encodes the writer,
                        // at_ns/dur_ns derive from it, so a torn (half-
                        // written) event is detectable below.
                        let payload = thread * PER_THREAD + i;
                        t.record(
                            thread as usize, // spreads over all 4 rings
                            payload,
                            TraceKind::Commit,
                            payload * 3,
                            payload * 7,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.recorded(), THREADS * PER_THREAD);
        let events = t.drain();
        assert!(events.len() <= 4 * 64, "bounded by total capacity");
        assert!(!events.is_empty());
        let mut prev = 0u64;
        for e in &events {
            assert!(e.seq > prev, "sequence numbers strictly increase");
            prev = e.seq;
            assert!(e.seq <= THREADS * PER_THREAD);
            assert_eq!(e.at_ns, e.txn * 3, "torn event: at_ns mismatch");
            assert_eq!(e.dur_ns, e.txn * 7, "torn event: dur_ns mismatch");
        }
    }
}
