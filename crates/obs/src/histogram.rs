//! Mergeable log-bucketed latency histograms.
//!
//! The layout follows HdrHistogram: the `u64` value range is covered by
//! power-of-two *groups*, each subdivided into `2^SUB_BUCKET_BITS = 16`
//! linear sub-buckets. Values below 16 land in exact unit buckets; a value
//! `v >= 16` lands in the bucket `[lo, lo + 2^shift)` where
//! `shift = floor(log2 v) - 4`, so every bucket's width is at most `v / 16`
//! — quantiles read back from the histogram are within 6.25% of the exact
//! sample quantile (and exact below 16). Recording is two relaxed atomic
//! adds plus a `fetch_max`: lock-free, no allocation, mergeable by bucket
//! addition.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two group is split into
/// `2^SUB_BUCKET_BITS` linear sub-buckets.
pub const SUB_BUCKET_BITS: u32 = 4;
/// Sub-buckets per group (16).
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Total buckets covering the full `u64` range: the linear region `[0, 16)`
/// plus one 16-bucket group per shift value `0..=59`.
const BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// Bucket index of a value. Monotone: `v <= w` implies
/// `bucket_index(v) <= bucket_index(w)`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BUCKET_BITS
    let shift = top - SUB_BUCKET_BITS;
    (shift as usize + 1) * SUB_BUCKETS + ((v >> shift) as usize - SUB_BUCKETS)
}

/// Inclusive upper bound of a bucket — the value quantile reads report, so
/// reported quantiles never under-estimate the exact sample quantile.
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let shift = (idx / SUB_BUCKETS - 1) as u32;
    let pos = (idx % SUB_BUCKETS) as u64;
    let low = (SUB_BUCKETS as u64 + pos) << shift;
    // Add the (width - 1) term pre-computed: for the topmost bucket
    // `low + width` is 2^64 and would overflow before the subtraction.
    low + ((1u64 << shift) - 1)
}

/// A lock-free latency histogram over `u64` values (nanoseconds by
/// convention).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free and allocation-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `p`-quantile (`0.0..=1.0`) of the recorded values, reported as
    /// the upper bound of the bucket holding the exact sample quantile:
    /// never an under-estimate, over by at most one bucket width (6.25%
    /// relative, exact below 16). Returns 0 when empty.
    ///
    /// The rank convention matches a sorted-vector model
    /// `sorted[max(1, ceil(p * n)) - 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Never report past the true maximum: the top bucket's
                // upper bound can exceed every recorded value.
                return bucket_high(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every sample of `other` into `self` (bucket-wise addition).
    /// Associative and commutative up to bucket granularity, which is what
    /// makes per-executor shards and cross-process aggregation sound.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Bucket occupancy as `(inclusive_upper_bound, count)` pairs for the
    /// non-empty buckets, in value order. Test/debug surface.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_high(idx), n))
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .field("p50", &self.percentile(0.5))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

/// Per-executor histogram shards merged on read: each executor records into
/// its own [`Histogram`] (no cross-core cache-line traffic on the hot
/// path); readers merge all shards into a fresh histogram.
pub struct ShardedHistogram {
    shards: Box<[Histogram]>,
}

impl ShardedHistogram {
    /// Creates `shards.max(1)` empty shards.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Histogram::new()).collect(),
        }
    }

    /// Records into the shard `shard % shards` — callers pass their
    /// executor index; non-executor contexts may pass anything.
    pub fn record(&self, shard: usize, v: u64) {
        self.shards[shard % self.shards.len()].record(v);
    }

    /// Merges every shard into one point-in-time histogram.
    pub fn merged(&self) -> Histogram {
        let out = Histogram::new();
        for shard in self.shards.iter() {
            out.merge(shard);
        }
        out
    }

    /// Total samples across all shards, without merging.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(Histogram::count).sum()
    }
}

impl std::fmt::Debug for ShardedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHistogram")
            .field("shards", &self.shards.len())
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact model: `sorted[max(1, ceil(p * n)) - 1]`.
    fn model_percentile(sorted: &[u64], p: f64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(idx <= prev + 1, "index skipped at {v}");
            assert!(bucket_high(idx) >= v, "upper bound below value at {v}");
            prev = idx;
        }
        // Spot-check the large range and the extremes.
        for v in [u64::MAX, u64::MAX / 2, 1 << 50, (1 << 50) + 12345] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            assert!(bucket_high(idx) >= v);
        }
    }

    #[test]
    fn bucket_width_is_bounded_by_a_sixteenth() {
        for v in 16..200_000u64 {
            let idx = bucket_index(v);
            let high = bucket_high(idx);
            assert!(high - v <= v / SUB_BUCKETS as u64, "width too wide at {v}");
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 15, 15, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), 43);
    }

    #[test]
    fn sharded_histogram_merges_all_shards() {
        let s = ShardedHistogram::new(4);
        s.record(0, 100);
        s.record(1, 200);
        s.record(2, 300);
        s.record(99, 400); // wraps to shard 3
        assert_eq!(s.count(), 4);
        let merged = s.merged();
        assert_eq!(merged.count(), 4);
        assert!(merged.percentile(1.0) >= 400);
    }

    proptest! {
        #[test]
        fn percentiles_match_sorted_model_within_bucket_width(
            values in proptest::collection::vec(0u64..2_000_000_000, 1..200),
            p in 0.0f64..1.0,
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.max(), *sorted.last().unwrap());
            for q in [p, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let exact = model_percentile(&sorted, q);
                let got = h.percentile(q);
                // Upper bucket bound: never below the exact quantile,
                // above by at most one bucket width (v/16, or 0 below 16),
                // and never beyond the true maximum.
                prop_assert!(got >= exact,
                    "p{} under-estimated: {} < {}", q, got, exact);
                prop_assert!(got <= exact + exact / 16,
                    "p{} over bucket width: {} vs {}", q, got, exact);
                prop_assert!(got <= h.max());
            }
        }

        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec(0u64..1_000_000_000, 0..60),
            b in proptest::collection::vec(0u64..1_000_000_000, 0..60),
            c in proptest::collection::vec(0u64..1_000_000_000, 0..60),
        ) {
            let of = |values: &[u64]| {
                let h = Histogram::new();
                for &v in values {
                    h.record(v);
                }
                h
            };
            // (a ⊕ b) ⊕ c
            let left = of(&a);
            left.merge(&of(&b));
            left.merge(&of(&c));
            // a ⊕ (b ⊕ c)
            let bc = of(&b);
            bc.merge(&of(&c));
            let right = of(&a);
            right.merge(&bc);
            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.sum(), right.sum());
            prop_assert_eq!(left.max(), right.max());
            prop_assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
            for q in [0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(left.percentile(q), right.percentile(q));
            }
            // ... and merging equals recording the concatenation.
            let mut all = a.clone();
            all.extend_from_slice(&b);
            all.extend_from_slice(&c);
            let direct = of(&all);
            prop_assert_eq!(left.nonzero_buckets(), direct.nonzero_buckets());
        }
    }
}
