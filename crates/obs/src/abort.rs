//! The abort-cause taxonomy.
//!
//! The engine previously distinguished only "concurrency-control abort" and
//! "phantom abort" (plus user/dangerous). Diagnosing a deployment needs the
//! full breakdown: an OCC read-set conflict points at contended keys, a
//! phantom at scan/insert interleavings, a 2PC lock-busy abort at
//! cross-container contention, a WAL failure at the log device.

use reactdb_common::TxnError;

/// Why a root transaction aborted. Classified once per resolved handle by
/// [`AbortReason::classify`]; every counter surface (`DbStats`,
/// `SessionStats`, trace events) uses this taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Silo read-set validation failed: a read tuple's version moved or its
    /// lock was held by another transaction at commit time.
    OccRead,
    /// Node-set (phantom) validation failed: a scanned range or observed-
    /// absent key changed membership before commit.
    Phantom,
    /// The commit was aborted by the distributed (2PC) protocol — a
    /// participant could not proceed, typically because required resources
    /// were busy.
    LockBusy,
    /// The intra-transaction safety condition (§2.2.4) rejected a dangerous
    /// call structure.
    DangerousStructure,
    /// The write-ahead log failed while the transaction's durability was
    /// being established (group commit I/O error).
    WalFailure,
    /// Application logic aborted the transaction (`ctx.abort`).
    UserAbort,
    /// Any other error surfaced through a handle: unknown names, schema
    /// violations, runtime faults.
    Other,
}

impl AbortReason {
    /// Every reason, in counter/reporting order.
    pub const ALL: [AbortReason; 7] = [
        AbortReason::OccRead,
        AbortReason::Phantom,
        AbortReason::LockBusy,
        AbortReason::DangerousStructure,
        AbortReason::WalFailure,
        AbortReason::UserAbort,
        AbortReason::Other,
    ];

    /// Stable snake_case name used in metric names and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::OccRead => "occ_read",
            AbortReason::Phantom => "phantom",
            AbortReason::LockBusy => "lock_busy",
            AbortReason::DangerousStructure => "dangerous_structure",
            AbortReason::WalFailure => "wal_failure",
            AbortReason::UserAbort => "user_abort",
            AbortReason::Other => "other",
        }
    }

    /// Classifies a transaction error. Total: every `TxnError` maps to
    /// exactly one reason, and the concurrency-control reasons
    /// ([`AbortReason::is_cc`]) are exactly the errors
    /// `TxnError::is_cc_abort` reports, so legacy `cc_aborts` counters can
    /// be derived from the breakdown.
    pub fn classify(error: &TxnError) -> AbortReason {
        match error {
            TxnError::Phantom => AbortReason::Phantom,
            TxnError::ValidationFailed => AbortReason::OccRead,
            TxnError::CommitAborted => AbortReason::LockBusy,
            TxnError::DangerousStructure { .. } => AbortReason::DangerousStructure,
            TxnError::UserAbort(_) => AbortReason::UserAbort,
            TxnError::Runtime(msg) if msg.starts_with("group commit failed") => {
                AbortReason::WalFailure
            }
            _ => AbortReason::Other,
        }
    }

    /// True for the concurrency-control reasons (retry-transparent):
    /// occ-read, phantom, lock-busy.
    pub fn is_cc(self) -> bool {
        matches!(
            self,
            AbortReason::OccRead | AbortReason::Phantom | AbortReason::LockBusy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_error_taxonomy() {
        assert_eq!(
            AbortReason::classify(&TxnError::Phantom),
            AbortReason::Phantom
        );
        assert_eq!(
            AbortReason::classify(&TxnError::ValidationFailed),
            AbortReason::OccRead
        );
        assert_eq!(
            AbortReason::classify(&TxnError::CommitAborted),
            AbortReason::LockBusy
        );
        assert_eq!(
            AbortReason::classify(&TxnError::DangerousStructure {
                reactor: "r".into()
            }),
            AbortReason::DangerousStructure
        );
        assert_eq!(
            AbortReason::classify(&TxnError::UserAbort("no".into())),
            AbortReason::UserAbort
        );
        assert_eq!(
            AbortReason::classify(&TxnError::Runtime("group commit failed: io".into())),
            AbortReason::WalFailure
        );
        assert_eq!(
            AbortReason::classify(&TxnError::Runtime("boom".into())),
            AbortReason::Other
        );
        assert_eq!(
            AbortReason::classify(&TxnError::NotFound {
                relation: "r".into(),
                key: "1".into()
            }),
            AbortReason::Other
        );
    }

    #[test]
    fn cc_reasons_agree_with_the_error_helper() {
        let errors = [
            TxnError::Phantom,
            TxnError::ValidationFailed,
            TxnError::CommitAborted,
            TxnError::DangerousStructure {
                reactor: "r".into(),
            },
            TxnError::UserAbort("a".into()),
            TxnError::Runtime("x".into()),
            TxnError::NotFound {
                relation: "r".into(),
                key: "1".into(),
            },
            TxnError::DuplicateKey {
                relation: "r".into(),
                key: "1".into(),
            },
        ];
        for e in &errors {
            assert_eq!(
                AbortReason::classify(e).is_cc(),
                e.is_cc_abort(),
                "cc mismatch for {e:?}"
            );
        }
    }
}
